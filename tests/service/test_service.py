"""AuditService end-to-end: correctness, admission, deadlines, lifecycle.

The service's contract, in order of importance:

* every completed response is **bit-identical** to a serial single-session run
  of the same queries — concurrency and pooling change latency and provenance
  counters, never content;
* requests beyond the per-tenant quota+queue are shed *synchronously* with a
  structured, typed error; queued requests that outlive their deadline fail
  with the same :class:`QueryTimeoutError` as running ones;
* registration is validated/idempotent, and replacing or unregistering content
  retires the pooled session *and* its named shared store — while plain LRU
  eviction keeps the store so re-created sessions start warm;
* :meth:`shutdown` stops admission, settles work (bounded), closes every
  session the pool ever built and leaves the shared-store registry clean.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.planner import DetectionQuery
from repro.core.result_store import (
    clear_shared_result_stores,
    shared_result_store_names,
)
from repro.core.session import AuditSession
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import QueryTimeoutError
from repro.ranking.base import PrecomputedRanker
from repro.service import (
    AdmissionConfig,
    AuditService,
    ServiceClosedError,
    ServiceFaultPlan,
    ServiceOverloadedError,
    UnknownRankingError,
)


def _instance(seed: int, n_rows: int = 60, cardinalities=(3, 2)):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=list(cardinalities),
        score_weights=weights,
        noise=0.4,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


def _queries(k_max: int = 30) -> list[DetectionQuery]:
    return [
        DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=k_max),
        DetectionQuery(ProportionalBoundSpec(alpha=0.9), tau_s=2, k_min=2, k_max=k_max),
    ]


def _oracle(dataset, ranking, queries):
    with AuditSession(dataset, ranking) as session:
        return [report.result for report in session.run_many(queries)]


@pytest.fixture(autouse=True)
def _clean_store_registry():
    clear_shared_result_stores()
    yield
    clear_shared_result_stores()


def _service(**overrides) -> AuditService:
    settings = dict(
        admission=AdmissionConfig(max_concurrent_per_tenant=1, max_queue_per_tenant=4),
        dispatchers=2,
    )
    settings.update(overrides)
    return AuditService(**settings)


class TestServing:
    def test_concurrent_tenants_get_bit_identical_results(self):
        dataset, ranking = _instance(31)
        queries = _queries()
        reference = _oracle(dataset, ranking, queries)
        with _service() as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            futures = [
                service.submit(tenant, "census/r", queries, deadline=60.0)
                for tenant in ("alice", "bob", "carol")
            ]
            for future in futures:
                reports = future.result(timeout=60)
                assert [r.result for r in reports] == reference
                assert all(r.stats.queue_wait_seconds >= 0 for r in reports)
        service.pool.assert_all_closed()

    def test_unknown_ranking_fails_synchronously(self):
        with _service() as service:
            with pytest.raises(UnknownRankingError):
                service.submit("alice", "census/r", _queries())

    def test_empty_batch_is_rejected(self):
        dataset, ranking = _instance(31)
        with _service() as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            with pytest.raises(ValueError, match="at least one"):
                service.submit("alice", "census/r", [])

    def test_run_is_submit_plus_wait(self):
        dataset, ranking = _instance(31)
        queries = _queries()
        reference = _oracle(dataset, ranking, queries)
        with _service() as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            reports = service.run("alice", "census/r", queries)
            assert [r.result for r in reports] == reference


class TestOverload:
    def test_quota_exhaustion_sheds_with_retry_hint(self):
        dataset, ranking = _instance(31)
        plan = ServiceFaultPlan(slow_requests=((1, 0.4),))
        with _service(
            admission=AdmissionConfig(
                max_concurrent_per_tenant=1, max_queue_per_tenant=0
            ),
            fault_plan=plan,
        ) as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            slow = service.submit("alice", "census/r", _queries())
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.submit("alice", "census/r", _queries())
            assert excinfo.value.tenant == "alice"
            assert excinfo.value.retry_after > 0
            slow.result(timeout=60)
            snapshot = service.admission.snapshot()["alice"]
            assert snapshot["shed"] == 1

    def test_injected_shed_fault(self):
        dataset, ranking = _instance(31)
        plan = ServiceFaultPlan(force_shed_requests=(2,))
        with _service(fault_plan=plan) as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            service.run("alice", "census/r", _queries())  # ordinal 1: fine
            with pytest.raises(ServiceOverloadedError, match="injected"):
                service.submit("alice", "census/r", _queries())  # ordinal 2
            assert service.health()["requests"]["injected_sheds"] == 1


class TestDeadlines:
    def test_deadline_expired_in_queue_fails_typed(self):
        """A request whose budget is consumed by queue wait fails with the same
        QueryTimeoutError a running timeout raises — before touching a session."""
        dataset, ranking = _instance(31)
        plan = ServiceFaultPlan(slow_requests=((1, 0.5),))
        with _service(fault_plan=plan, dispatchers=1) as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            slow = service.submit("alice", "census/r", _queries())
            doomed = service.submit("alice", "census/r", _queries(), deadline=0.05)
            error = doomed.exception(timeout=60)
            assert isinstance(error, QueryTimeoutError)
            assert "in queue" in str(error)
            with pytest.raises(QueryTimeoutError):
                doomed.result()
            slow.result(timeout=60)
            assert service.health()["requests"]["failed"] == 1

    def test_invalid_deadline_is_rejected(self):
        dataset, ranking = _instance(31)
        with _service() as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            with pytest.raises(ValueError, match="deadline"):
                service.submit("alice", "census/r", _queries(), deadline=0.0)


class TestStoreAndPoolLifecycle:
    def test_eviction_keeps_store_warm_for_recreated_session(self):
        """LRU eviction closes the session but keeps its named store, so the
        re-created session answers repeats from the cache (the warmth contract);
        shutdown then discards every service store (the no-leak contract)."""
        d1, r1 = _instance(31)
        d2, r2 = _instance(37)
        queries = _queries()
        with _service(max_sessions=1) as service:
            service.register_dataset("one", d1)
            service.register_ranking("one", "r", r1)
            service.register_dataset("two", d2)
            service.register_ranking("two", "r", r2)
            first = service.run("alice", "one/r", queries)
            service.run("alice", "two/r", queries)  # evicts the "one/r" session
            assert service.pool.evictions == 1
            assert set(shared_result_store_names()) == {
                "audit-service:one/r",
                "audit-service:two/r",
            }
            again = service.run("alice", "one/r", queries)
            assert [r.result for r in again] == [r.result for r in first]
            # Served from the surviving store, not recomputed.
            assert all(r.stats.result_cache_hits == 1 for r in again)
            assert service.pool.sessions_created == 3
        assert shared_result_store_names() == ()
        service.pool.assert_all_closed()

    def test_unregister_ranking_retires_session_and_store(self):
        dataset, ranking = _instance(31)
        with _service() as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            service.run("alice", "census/r", _queries())
            service.unregister_ranking("census/r")
            assert shared_result_store_names() == ()
            assert service.pool.open_sessions == 0
            with pytest.raises(UnknownRankingError):
                service.submit("alice", "census/r", _queries())

    def test_replacing_a_ranking_serves_the_new_order(self):
        dataset, _ = _instance(31)
        descending = PrecomputedRanker(score_column="score").rank(dataset)
        ascending = PrecomputedRanker(score_column="score", descending=False).rank(dataset)
        queries = _queries()
        with _service() as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", descending)
            before = service.run("alice", "census/r", queries)
            assert [r.result for r in before] == _oracle(dataset, descending, queries)
            # Idempotent re-registration keeps the warm session and store.
            service.register_ranking("census", "r", descending)
            assert service.pool.open_sessions == 1
            # Replacement retires both: stale sweeps must not serve the new order.
            service.register_ranking("census", "r", ascending, replace=True)
            assert service.pool.open_sessions == 0
            after = service.run("alice", "census/r", queries)
            assert [r.result for r in after] == _oracle(dataset, ascending, queries)

    def test_replacing_a_dataset_drops_dependent_sessions(self):
        d1, r1 = _instance(31)
        d2, _ = _instance(37)
        with _service() as service:
            service.register_dataset("census", d1)
            service.register_ranking("census", "r", r1)
            service.run("alice", "census/r", _queries())
            service.register_dataset("census", d2, replace=True)
            assert service.pool.open_sessions == 0
            assert shared_result_store_names() == ()
            assert service.registry.ranking_keys() == ()


class TestHealthAndShutdown:
    def test_health_surfaces_sessions_and_stats(self):
        dataset, ranking = _instance(31)
        with _service() as service:
            service.register_dataset("census", dataset)
            service.register_ranking("census", "r", ranking)
            service.run("alice", "census/r", _queries())
            health = service.health()
            assert health["status"] == "ok" and health["ready"]
            assert health["rankings"] == ["census/r"]
            (session,) = health["sessions"]
            assert session["key"] == "census/r"
            assert session["degraded"] is False
            assert session["queries_served"] == 1
            assert health["requests"]["completed"] == 1
            assert health["stats"]["elapsed_seconds"] > 0
            # The admission slot is released just after the future resolves;
            # give the dispatcher a beat before asserting on its counters.
            deadline = time.monotonic() + 5.0
            while (
                service.admission.snapshot()["alice"]["completed"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert service.admission.snapshot()["alice"]["completed"] == 1
        assert service.health()["status"] == "closed"
        assert not service.ready()

    def test_submit_after_shutdown_raises_closed(self):
        dataset, ranking = _instance(31)
        service = _service()
        service.register_dataset("census", dataset)
        service.register_ranking("census", "r", ranking)
        service.shutdown()
        with pytest.raises(ServiceClosedError):
            service.submit("alice", "census/r", _queries())
        service.shutdown()  # idempotent

    def test_drain_shutdown_serves_queued_requests(self):
        dataset, ranking = _instance(31)
        queries = _queries()
        reference = _oracle(dataset, ranking, queries)
        plan = ServiceFaultPlan(slow_requests=((1, 0.3),))
        service = _service(fault_plan=plan, dispatchers=1)
        service.register_dataset("census", dataset)
        service.register_ranking("census", "r", ranking)
        slow = service.submit("alice", "census/r", queries)
        queued = service.submit("alice", "census/r", queries)
        service.shutdown(drain=True, timeout=60.0)
        assert [r.result for r in slow.result()] == reference
        assert [r.result for r in queued.result()] == reference
        service.pool.assert_all_closed()

    def test_non_drain_shutdown_fails_queued_typed(self):
        dataset, ranking = _instance(31)
        plan = ServiceFaultPlan(slow_requests=((1, 0.3),))
        service = _service(fault_plan=plan, dispatchers=1)
        service.register_dataset("census", dataset)
        service.register_ranking("census", "r", ranking)
        slow = service.submit("alice", "census/r", _queries())
        queued = service.submit("alice", "census/r", _queries())
        service.shutdown(drain=False, timeout=60.0)
        slow.result()  # the running request still completes
        assert isinstance(queued.exception(), ServiceClosedError)
        service.pool.assert_all_closed()

    def test_shutdown_never_hangs(self):
        """Shutdown's wait is bounded even with work outstanding."""
        dataset, ranking = _instance(31)
        plan = ServiceFaultPlan(slow_requests=((1, 5.0),))
        service = _service(fault_plan=plan, dispatchers=1)
        service.register_dataset("census", dataset)
        service.register_ranking("census", "r", ranking)
        service.submit("alice", "census/r", _queries())
        started = time.monotonic()
        service.shutdown(timeout=0.2)
        assert time.monotonic() - started < 3.0
        assert service.health()["status"] == "closed"
