"""DatasetRegistry: validated names, fingerprint idempotency, replacement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker
from repro.service.errors import (
    RegistrationConflictError,
    RegistryError,
    UnknownDatasetError,
    UnknownRankingError,
)
from repro.service.registry import DatasetRegistry, ranking_key


def _dataset(seed: int, n_rows: int = 40, cardinalities=(3, 2)):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=list(cardinalities),
        score_weights=weights,
        noise=0.4,
        seed=seed,
    )
    return synthetic_dataset(spec)


def _ranking(dataset):
    return PrecomputedRanker(score_column="score").rank(dataset)


class TestDatasetRegistration:
    def test_register_describes_columns_and_roles(self):
        registry = DatasetRegistry()
        dataset = _dataset(11)
        record = registry.register_dataset(
            "census", dataset, roles={"A1": "protected", "score": "score"}
        )
        assert record.fingerprint == dataset.fingerprint()
        assert record.column("A1").role == "protected"
        assert record.column("A1").kind == "categorical"
        assert record.column("A1").cardinality == 3
        assert record.column("score").kind == "numeric"
        described = record.describe()
        assert described["rows"] == dataset.n_rows
        assert {c["name"] for c in described["columns"]} >= {"A1", "A2", "score"}

    def test_unknown_role_column_fails_registration(self):
        registry = DatasetRegistry()
        with pytest.raises(RegistryError, match="unknown column"):
            registry.register_dataset("census", _dataset(11), roles={"nope": "protected"})
        assert registry.dataset_names() == ()

    def test_invalid_names_rejected(self):
        registry = DatasetRegistry()
        with pytest.raises(RegistryError):
            registry.register_dataset("", _dataset(11))
        with pytest.raises(RegistryError, match="cannot contain"):
            registry.register_dataset("a/b", _dataset(11))

    def test_same_fingerprint_reregistration_is_idempotent(self):
        registry = DatasetRegistry()
        first = registry.register_dataset("census", _dataset(11))
        again = registry.register_dataset("census", _dataset(11))
        assert again is first
        assert registry.reregistrations == 1

    def test_conflicting_reregistration_needs_replace(self):
        registry = DatasetRegistry()
        registry.register_dataset("census", _dataset(11))
        registry.register_ranking("census", "r", _ranking(_dataset(11)))
        other = _dataset(13)
        with pytest.raises(RegistrationConflictError, match="replace=True"):
            registry.register_dataset("census", other)
        record = registry.register_dataset("census", other, replace=True)
        assert record.fingerprint == other.fingerprint()
        assert registry.replacements == 1
        # Replacement drops the dependent rankings.
        assert registry.ranking_keys(dataset="census") == ()

    def test_unknown_dataset_error_lists_available(self):
        registry = DatasetRegistry()
        registry.register_dataset("census", _dataset(11))
        with pytest.raises(UnknownDatasetError, match="census") as excinfo:
            registry.dataset("payroll")
        assert excinfo.value.available == ("census",)

    def test_unregister_dataset_reports_dropped_ranking_keys(self):
        registry = DatasetRegistry()
        dataset = _dataset(11)
        registry.register_dataset("census", dataset)
        registry.register_ranking("census", "a", _ranking(dataset))
        registry.register_ranking("census", "b", _ranking(dataset))
        dropped = registry.unregister_dataset("census")
        assert sorted(dropped) == ["a", "b"]
        assert len(registry) == 0


class TestRankingRegistration:
    def test_ranker_is_ranked_against_registered_dataset(self):
        registry = DatasetRegistry()
        dataset = _dataset(11)
        registry.register_dataset("census", dataset)
        record = registry.register_ranking(
            "census", "by-score", PrecomputedRanker(score_column="score")
        )
        assert record.key == ranking_key("census", "by-score")
        assert np.array_equal(record.ranking.order, _ranking(dataset).order)

    def test_prebuilt_ranking_must_rank_the_registered_dataset(self):
        registry = DatasetRegistry()
        registry.register_dataset("census", _dataset(11))
        foreign = _ranking(_dataset(13))
        with pytest.raises(RegistryError, match="different dataset"):
            registry.register_ranking("census", "by-score", foreign)

    def test_identical_order_reregistration_is_idempotent(self):
        registry = DatasetRegistry()
        dataset = _dataset(11)
        registry.register_dataset("census", dataset)
        first = registry.register_ranking("census", "r", _ranking(dataset))
        again = registry.register_ranking("census", "r", _ranking(dataset))
        assert again is first
        assert registry.reregistrations == 1

    def test_different_order_needs_replace(self):
        registry = DatasetRegistry()
        dataset = _dataset(11)
        registry.register_dataset("census", dataset)
        registry.register_ranking("census", "r", _ranking(dataset))
        reversed_ranking = PrecomputedRanker(
            score_column="score", descending=False
        ).rank(dataset)
        with pytest.raises(RegistrationConflictError):
            registry.register_ranking("census", "r", reversed_ranking)
        record = registry.register_ranking("census", "r", reversed_ranking, replace=True)
        assert np.array_equal(record.ranking.order, reversed_ranking.order)
        assert registry.replacements == 1

    def test_unknown_ranking_error_lists_available(self):
        registry = DatasetRegistry()
        dataset = _dataset(11)
        registry.register_dataset("census", dataset)
        registry.register_ranking("census", "r", _ranking(dataset))
        with pytest.raises(UnknownRankingError) as excinfo:
            registry.ranking("census/missing")
        assert excinfo.value.available == ("census/r",)
        with pytest.raises(UnknownRankingError):
            registry.unregister_ranking("census/missing")

    def test_describe_covers_datasets_and_rankings(self):
        registry = DatasetRegistry()
        dataset = _dataset(11)
        registry.register_dataset("census", dataset, description="the census")
        registry.register_ranking("census", "r", _ranking(dataset))
        snapshot = registry.describe()
        assert [d["name"] for d in snapshot["datasets"]] == ["census"]
        assert [r["key"] for r in snapshot["rankings"]] == ["census/r"]
