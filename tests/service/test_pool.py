"""SessionPool: LRU bounds, lease-safe eviction, exact close bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import AuditSession
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker
from repro.service.errors import ServiceError
from repro.service.pool import SessionPool


def _session_factory(n_rows: int = 24):
    """A factory building one tiny real session per key (seeded by key hash)."""

    def build(key: str) -> AuditSession:
        seed = sum(ord(c) for c in key) % 1000
        spec = SyntheticSpec(
            n_rows=n_rows,
            cardinalities=[2, 2],
            score_weights=[1.0, -0.5],
            noise=0.3,
            seed=seed,
        )
        dataset = synthetic_dataset(spec)
        ranking = PrecomputedRanker(score_column="score").rank(dataset)
        return AuditSession(dataset, ranking)

    return build


class TestLeasing:
    def test_lease_creates_once_and_reuses(self):
        pool = SessionPool(_session_factory(), max_sessions=4)
        first = pool.lease("a")
        pool.release(first)
        second = pool.lease("a")
        pool.release(second)
        assert second is first
        assert pool.sessions_created == 1
        assert second.queries_served == 2  # one per release
        pool.close_all()
        pool.assert_all_closed()

    def test_release_without_lease_is_an_error(self):
        pool = SessionPool(_session_factory(), max_sessions=4)
        entry = pool.lease("a")
        pool.release(entry)
        with pytest.raises(ValueError, match="matching lease"):
            pool.release(entry)
        pool.close_all()

    def test_lease_after_close_refuses(self):
        pool = SessionPool(_session_factory(), max_sessions=4)
        pool.close_all()
        with pytest.raises(ServiceError, match="closed"):
            pool.lease("a")


class TestEviction:
    def test_lru_eviction_closes_oldest(self):
        pool = SessionPool(_session_factory(), max_sessions=2)
        a = pool.lease("a"); pool.release(a)
        b = pool.lease("b"); pool.release(b)
        c = pool.lease("c"); pool.release(c)  # evicts "a" (least recently leased)
        assert pool.keys() == ("b", "c")
        assert pool.evictions == 1
        assert a.session.closed
        assert not b.session.closed
        pool.close_all()
        pool.assert_all_closed()

    def test_leasing_refreshes_lru_position(self):
        pool = SessionPool(_session_factory(), max_sessions=2)
        a = pool.lease("a"); pool.release(a)
        b = pool.lease("b"); pool.release(b)
        a2 = pool.lease("a"); pool.release(a2)  # "a" is now most recent
        pool.release(pool.lease("c"))  # evicts "b"
        assert pool.keys() == ("a", "c")
        pool.close_all()
        pool.assert_all_closed()

    def test_max_resident_rows_bounds_memory_proxy(self):
        pool = SessionPool(_session_factory(n_rows=24), max_sessions=10,
                           max_resident_rows=40)
        pool.release(pool.lease("a"))
        pool.release(pool.lease("b"))  # 48 resident rows > 40: "a" is evicted
        assert pool.keys() == ("b",)
        assert pool.evictions == 1
        pool.close_all()
        pool.assert_all_closed()

    def test_leased_victim_is_not_closed_mid_query(self):
        """Eviction of a leased entry defers the close to the final release."""
        pool = SessionPool(_session_factory(), max_sessions=1)
        a = pool.lease("a")  # still leased
        b = pool.lease("b")  # over bound; the only victim ("a") is leased
        assert a.retired
        assert not a.session.closed
        # The retired entry is out of the key space: a new lease of "a" must
        # build a fresh session rather than resurrect the retired one.
        fresh = pool.lease("a")
        assert fresh is not a
        pool.release(fresh)
        pool.release(b)
        pool.release(a)  # final release closes the retired session
        assert a.session.closed
        pool.close_all()
        pool.assert_all_closed()

    def test_protected_key_is_never_evicted(self):
        pool = SessionPool(_session_factory(), max_sessions=1)
        a = pool.lease("a"); pool.release(a)
        b = pool.lease("b")  # pool of 1: must evict "a", never "b" itself
        assert a.session.closed
        assert not b.session.closed
        pool.release(b)
        pool.close_all()
        pool.assert_all_closed()


class TestRetire:
    def test_retire_unleased_closes_immediately(self):
        pool = SessionPool(_session_factory(), max_sessions=4)
        a = pool.lease("a"); pool.release(a)
        assert pool.retire("a") is True
        assert a.session.closed
        assert pool.retire("a") is False  # already gone
        pool.close_all()
        pool.assert_all_closed()

    def test_retire_leased_defers_close(self):
        pool = SessionPool(_session_factory(), max_sessions=4)
        a = pool.lease("a")
        assert pool.retire("a") is True
        assert not a.session.closed
        pool.release(a)
        assert a.session.closed
        pool.close_all()
        pool.assert_all_closed()

    def test_close_all_is_idempotent_and_exact(self):
        pool = SessionPool(_session_factory(), max_sessions=4)
        pool.release(pool.lease("a"))
        pool.release(pool.lease("b"))
        pool.close_all()
        pool.close_all()
        assert pool.sessions_created == pool.sessions_closed == 2
        pool.assert_all_closed()

    def test_assert_all_closed_reports_leaks(self):
        pool = SessionPool(_session_factory(), max_sessions=4)
        entry = pool.lease("a")
        with pytest.raises(ServiceError, match="session-pool leak"):
            pool.assert_all_closed()
        pool.release(entry)
        pool.close_all()
        pool.assert_all_closed()

    def test_snapshot_counts(self):
        pool = SessionPool(_session_factory(), max_sessions=2)
        pool.release(pool.lease("a"))
        pool.release(pool.lease("b"))
        pool.release(pool.lease("c"))
        snapshot = pool.snapshot()
        assert snapshot["open"] == 2
        assert snapshot["sessions_created"] == 3
        assert snapshot["evictions"] == 1
        pool.close_all()
        pool.assert_all_closed()
