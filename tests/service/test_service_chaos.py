"""Seeded multi-client chaos: the service acceptance scenario.

Each round drives one :class:`AuditService` through every failure mode at once,
deterministically:

* **phase 1 — worker faults**: each registered ranking serves its first request
  with a scheduled worker kill inside its pooled session's executor; the
  supervisor respawns the worker and the response must match the fault-free
  serial oracle bit-for-bit;
* **phase 2 — concurrent storm**: several tenant threads submit interleaved
  requests while the fault plan sheds one submit ordinal and stalls another,
  and one request carries a deliberately impossible deadline.  Every completed
  response must equal the oracle; every failure must be a *typed* error
  (:class:`ServiceOverloadedError` or :class:`QueryTimeoutError`) — nothing
  else, ever;
* **epilogue — clean shutdown**: the pool's close bookkeeping must be exact
  (:meth:`SessionPool.assert_all_closed`), the shared-store registry empty and
  no worker process left behind.

Set ``REPRO_SERVICE_CHAOS_ROUNDS`` (or the suite-wide ``REPRO_CHAOS_ROUNDS``)
to raise the round count; CI smoke runs a couple of rounds, nightly runs more.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.engine.faults import KILL, FaultAction, FaultPlan
from repro.core.engine.parallel import ExecutionConfig
from repro.core.planner import DetectionQuery
from repro.core.result_store import (
    clear_shared_result_stores,
    shared_result_store_names,
)
from repro.core.session import AuditSession
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import QueryTimeoutError
from repro.ranking.base import PrecomputedRanker
from repro.service import (
    AdmissionConfig,
    AuditService,
    ServiceFaultPlan,
    ServiceOverloadedError,
)

CHAOS_ROUNDS = int(
    os.environ.get(
        "REPRO_SERVICE_CHAOS_ROUNDS", os.environ.get("REPRO_CHAOS_ROUNDS", "2")
    )
)

TENANTS = ("alice", "bob", "carol")


def _instance(seed: int, n_rows: int):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=2).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=[2, 3],
        score_weights=weights,
        noise=0.4,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


@pytest.fixture(autouse=True)
def _clean_store_registry():
    clear_shared_result_stores()
    yield
    clear_shared_result_stores()


class TestServiceChaos:
    @pytest.mark.parametrize("round_index", range(CHAOS_ROUNDS))
    def test_chaos_round_completed_responses_match_serial_oracle(self, round_index):
        seed = 700 + 31 * round_index
        rng = np.random.default_rng(seed)
        k_max = int(rng.integers(20, 32))
        keys = ("one/r", "two/r")
        instances = {
            "one/r": _instance(seed, 48 + int(rng.integers(0, 12))),
            "two/r": _instance(seed + 7, 48 + int(rng.integers(0, 12))),
        }
        storm_queries = [
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, k_max, "iter_td"),
            DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, k_max),
        ]
        warmup_query = DetectionQuery(
            GlobalBoundSpec(lower_bounds=2.0), 2, 2, k_max, "global_bounds"
        )
        # A query no other request issues: the doomed request can never be
        # answered instantly from the shared store, so its ~0 deadline trips.
        doomed_query = DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), 3, 2, k_max)
        oracle = {}
        for key, (dataset, ranking) in instances.items():
            with AuditSession(dataset, ranking) as session:
                reports = session.run_many(
                    [warmup_query] + storm_queries + [doomed_query]
                )
            oracle[key] = [report.result for report in reports]

        # Worker kills are pinned to each session's first executor (generation 0,
        # incarnation 0) but not to a worker index: whichever worker receives a
        # first task dies, so the fault fires however the sweep happens to
        # shard.  Respawned workers (incarnation 1) are untouched.
        plan = ServiceFaultPlan(
            worker_faults=FaultPlan(actions=(FaultAction(KILL, worker=None, at_task=1),)),
            # Ordinals are counted across the whole service lifetime; phase 1
            # consumes 1..2, so these target the concurrent storm.
            force_shed_requests=(4,),
            slow_requests=((5, 0.25),),
        )
        execution = ExecutionConfig(
            workers=2,
            heartbeat_interval=0.05,
            heartbeat_timeout=5.0,
            shard_timeout=2.0,
            retry_backoff=0.01,
            max_worker_restarts=4,
        )
        service = AuditService(
            execution=execution,
            admission=AdmissionConfig(
                max_concurrent_per_tenant=1, max_queue_per_tenant=4
            ),
            dispatchers=2,
            fault_plan=plan,
        )
        try:
            for key, (dataset, ranking) in instances.items():
                name = key.split("/")[0]
                service.register_dataset(name, dataset)
                service.register_ranking(name, "r", ranking)

            # -- phase 1: worker kill inside each pooled session ----------------
            for key in keys:
                reports = service.run(TENANTS[0], key, warmup_query, deadline=120.0)
                assert reports[0].result == oracle[key][0]
                # Every worker that received a task died once and was respawned.
                assert 1 <= reports[0].stats.worker_restarts <= execution.workers

            # -- phase 2: concurrent storm --------------------------------------
            outcomes = []
            outcomes_lock = threading.Lock()

            def tenant_storm(tenant: str, tenant_index: int) -> None:
                futures = []
                for request_index in range(2):
                    key = keys[(tenant_index + request_index) % len(keys)]
                    try:
                        futures.append(
                            (key, service.submit(tenant, key, storm_queries))
                        )
                    except ServiceOverloadedError as error:
                        with outcomes_lock:
                            outcomes.append(("shed", tenant, key, error))
                if tenant_index == 0:
                    key = keys[0]
                    try:
                        futures.append(
                            (key, service.submit(tenant, key, doomed_query,
                                                 deadline=0.002))
                        )
                    except ServiceOverloadedError as error:
                        with outcomes_lock:
                            outcomes.append(("shed", tenant, key, error))
                for key, future in futures:
                    try:
                        reports = future.result(timeout=120)
                    except BaseException as error:
                        with outcomes_lock:
                            outcomes.append(("failed", tenant, key, error))
                    else:
                        with outcomes_lock:
                            outcomes.append(("completed", tenant, key, reports))

            threads = [
                threading.Thread(target=tenant_storm, args=(tenant, index))
                for index, tenant in enumerate(TENANTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
                assert not thread.is_alive(), "a tenant thread wedged"

            completed = [o for o in outcomes if o[0] == "completed"]
            sheds = [o for o in outcomes if o[0] == "shed"]
            failures = [o for o in outcomes if o[0] == "failed"]
            # Exactly one submit ordinal is force-shed; the queues are sized so
            # no organic shedding can occur on top of it.
            assert len(sheds) == 1
            assert isinstance(sheds[0][3], ServiceOverloadedError)
            assert sheds[0][3].retry_after > 0
            # Every other failure must be the doomed request's typed timeout.
            for _, tenant, key, error in failures:
                assert isinstance(error, QueryTimeoutError), repr(error)
            assert len(failures) <= 1
            # Completed responses are bit-identical to the serial oracle,
            # whatever interleaving and faults they were served under.  Seven
            # submits minus the one shed leave six futures; only the doomed
            # request may fail beyond that.
            assert len(completed) == 6 - len(failures)
            for _, tenant, key, reports in completed:
                if len(reports) == len(storm_queries):
                    assert [r.result for r in reports] == oracle[key][1:3]
                else:  # the doomed request squeaked in under its deadline
                    assert [r.result for r in reports] == [oracle[key][3]]
        finally:
            service.shutdown(timeout=120.0)

        # -- epilogue: nothing leaked ------------------------------------------
        service.pool.assert_all_closed()
        assert shared_result_store_names() == ()
        assert service.health()["status"] == "closed"
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []
