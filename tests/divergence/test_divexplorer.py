"""Tests for repro.divergence (the Section VI-D comparator)."""

from __future__ import annotations

import pytest

from repro.core.pattern import Pattern
from repro.divergence.divexplorer import (
    DivergenceDetector,
    reciprocal_rank_outcome,
    top_k_outcome,
)
from repro.exceptions import DetectionError


class TestOutcomeFunctions:
    def test_top_k_outcome(self, toy_ranking):
        outcomes = top_k_outcome(toy_ranking, 5)
        assert outcomes.sum() == 5
        assert outcomes[toy_ranking.row_at_rank(1)] == 1.0
        assert outcomes[toy_ranking.row_at_rank(6)] == 0.0

    def test_reciprocal_rank_outcome(self, toy_ranking):
        outcomes = reciprocal_rank_outcome(toy_ranking, 4)
        assert outcomes[toy_ranking.row_at_rank(1)] == pytest.approx(1.0)
        assert outcomes[toy_ranking.row_at_rank(2)] == pytest.approx(0.5)
        assert outcomes[toy_ranking.row_at_rank(5)] == 0.0


class TestDivergenceDetector:
    def test_frequent_groups_and_divergence_values(self, toy_dataset, toy_ranking):
        detector = DivergenceDetector(support=0.25, k=4)
        result = detector.detect(toy_dataset, toy_ranking)
        assert result.dataset_outcome == pytest.approx(4 / 16)
        # {School=GP} has 8 members, 1 of which is in the top-4.
        group = result.group_for(Pattern({"School": "GP"}))
        assert group.size == 8
        assert group.outcome == pytest.approx(1 / 8)
        assert group.divergence == pytest.approx(1 / 8 - 4 / 16)

    def test_all_frequent_subgroups_reported_including_subsumed(self, toy_dataset, toy_ranking):
        """Unlike our detectors, the divergence method keeps subsumed subgroups."""
        detector = DivergenceDetector(support=2 / 16, k=4)
        result = detector.detect(toy_dataset, toy_ranking)
        patterns = result.patterns()
        assert Pattern({"Gender": "F"}) in patterns
        assert Pattern({"Gender": "F", "School": "GP"}) in patterns

    def test_support_threshold_respected(self, toy_dataset, toy_ranking):
        result = DivergenceDetector(support=0.5, k=4).detect(toy_dataset, toy_ranking)
        for group in result:
            assert group.support >= 0.5
        # Only the single-attribute patterns of size 8 qualify at support 0.5.
        assert all(len(group.pattern) == 1 for group in result)

    def test_ordering_is_by_ascending_divergence(self, toy_dataset, toy_ranking):
        result = DivergenceDetector(support=0.2, k=4).detect(toy_dataset, toy_ranking)
        divergences = [group.divergence for group in result]
        assert divergences == sorted(divergences)
        assert result.most_negative(3)[0].divergence == min(divergences)

    def test_rank_of_and_contains(self, toy_dataset, toy_ranking):
        result = DivergenceDetector(support=0.25, k=4).detect(toy_dataset, toy_ranking)
        pattern = Pattern({"School": "GP"})
        assert 1 <= result.rank_of(pattern) <= len(result)
        assert result.contains([pattern])
        missing = Pattern({"School": "GP", "Gender": "F", "Address": "R", "Failures": 2})
        assert not result.contains([missing])
        with pytest.raises(DetectionError):
            result.rank_of(missing)
        with pytest.raises(DetectionError):
            result.group_for(missing)

    def test_max_pattern_length(self, toy_dataset, toy_ranking):
        result = DivergenceDetector(support=0.2, k=4, max_pattern_length=1).detect(
            toy_dataset, toy_ranking
        )
        assert all(len(group.pattern) == 1 for group in result)

    def test_custom_outcome_function(self, toy_dataset, toy_ranking):
        result = DivergenceDetector(support=0.4, k=4, outcome=reciprocal_rank_outcome).detect(
            toy_dataset, toy_ranking
        )
        assert len(result) > 0

    def test_validation(self, toy_dataset, toy_ranking):
        with pytest.raises(DetectionError):
            DivergenceDetector(support=0.0, k=4)
        with pytest.raises(DetectionError):
            DivergenceDetector(support=0.5, k=0)
        with pytest.raises(DetectionError):
            DivergenceDetector(support=0.5, k=4, max_pattern_length=0)
        with pytest.raises(DetectionError):
            DivergenceDetector(support=0.5, k=100).detect(toy_dataset, toy_ranking)
