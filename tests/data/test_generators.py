"""Tests for the synthetic dataset generators (schema fidelity and determinism)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators.compas import ATTRIBUTE_ORDER as COMPAS_ATTRIBUTES
from repro.data.generators.compas import SCORE_ATTRIBUTES, compas_dataset
from repro.data.generators.german_credit import ATTRIBUTE_ORDER as GERMAN_ATTRIBUTES
from repro.data.generators.german_credit import german_credit_dataset
from repro.data.generators.student import ATTRIBUTE_ORDER as STUDENT_ATTRIBUTES
from repro.data.generators.student import EDUCATION_LEVELS, student_dataset
from repro.data.generators.toy import FIGURE1_RANKS, FIGURE1_ROWS, figure1_order, students_toy


class TestToyDataset:
    def test_figure1_contents(self):
        dataset = students_toy()
        assert dataset.n_rows == 16
        assert dataset.attribute_names == ("Gender", "School", "Address", "Failures")
        # Tuple 12 (index 11) is the rank-1 student with grade 20.
        assert dataset.row(11) == {"Gender": "F", "School": "GP", "Address": "U", "Failures": 0}
        assert dataset.numeric_column("Grade")[11] == 20.0

    def test_figure1_order_matches_rank_column(self):
        order = figure1_order()
        assert len(order) == 16
        # The first entry is the row with rank 1, i.e. tuple 12 -> index 11.
        assert order[0] == 11
        for position, row_index in enumerate(order, start=1):
            assert FIGURE1_RANKS[row_index] == position

    def test_example_2_3_pattern_sizes(self):
        """Example 2.3: s_D({School=GP}) = 8."""
        dataset = students_toy()
        assert dataset.count({"School": "GP"}) == 8
        assert dataset.count({"School": "MS"}) == 8

    def test_rows_constant_matches_dataset(self):
        dataset = students_toy()
        for index, (gender, school, address, failures, grade) in enumerate(FIGURE1_ROWS):
            assert dataset.row(index) == {
                "Gender": gender,
                "School": school,
                "Address": address,
                "Failures": failures,
            }
            assert dataset.numeric_column("Grade")[index] == float(grade)


class TestStudentGenerator:
    def test_schema_matches_uci_fragment(self):
        dataset = student_dataset(n_rows=120, seed=1)
        assert dataset.n_rows == 120
        assert dataset.attribute_names == STUDENT_ATTRIBUTES
        assert len(STUDENT_ATTRIBUTES) == 33
        assert {"G1", "G2", "G3", "absences"}.issubset(set(dataset.numeric_names))

    def test_default_row_count(self):
        assert student_dataset(seed=2).n_rows == 395

    def test_deterministic(self):
        assert student_dataset(n_rows=80, seed=9) == student_dataset(n_rows=80, seed=9)

    def test_grades_in_range_and_correlated(self):
        dataset = student_dataset(n_rows=300, seed=4)
        g3 = dataset.numeric_column("G3")
        g2 = dataset.numeric_column("G2")
        assert g3.min() >= 0 and g3.max() <= 20
        assert np.corrcoef(g2, g3)[0, 1] > 0.6

    def test_mother_education_effect_on_final_grade(self):
        """Low parental education should depress the final grade (Figure 10a setting)."""
        dataset = student_dataset(n_rows=395, seed=7)
        g3 = dataset.numeric_column("G3")
        low = dataset.match_mask({"Medu": EDUCATION_LEVELS[1]})
        high = dataset.match_mask({"Medu": EDUCATION_LEVELS[4]})
        assert low.sum() > 10 and high.sum() > 10
        assert g3[high].mean() > g3[low].mean()


class TestCompasGenerator:
    def test_schema_and_score_attributes(self):
        dataset = compas_dataset(n_rows=500, seed=1)
        assert dataset.attribute_names == COMPAS_ATTRIBUTES
        assert len(COMPAS_ATTRIBUTES) == 16
        for name in SCORE_ATTRIBUTES:
            assert dataset.has_numeric(name)

    def test_default_row_count(self):
        assert compas_dataset(seed=0).n_rows == 6889

    def test_deterministic(self):
        assert compas_dataset(n_rows=200, seed=5) == compas_dataset(n_rows=200, seed=5)

    def test_decile_score_tracks_priors(self):
        dataset = compas_dataset(n_rows=2000, seed=2)
        deciles = np.array([float(value) for value in dataset.column("decile_score")])
        priors = dataset.numeric_column("priors_count")
        assert np.corrcoef(deciles, priors)[0, 1] > 0.3


class TestGermanCreditGenerator:
    def test_schema(self):
        dataset = german_credit_dataset(n_rows=300, seed=1)
        assert dataset.attribute_names == GERMAN_ATTRIBUTES
        assert len(GERMAN_ATTRIBUTES) == 20
        assert dataset.has_numeric("creditworthiness")

    def test_default_row_count(self):
        assert german_credit_dataset(seed=0).n_rows == 1000

    def test_deterministic(self):
        assert german_credit_dataset(n_rows=150, seed=3) == german_credit_dataset(n_rows=150, seed=3)

    def test_creditworthiness_drivers(self):
        """Residence length drives creditworthiness up, duration drives it down (Fig. 10c)."""
        dataset = german_credit_dataset(n_rows=1000, seed=4)
        score = dataset.numeric_column("creditworthiness")
        residence = dataset.numeric_column("residence_length")
        duration = dataset.numeric_column("duration_in_month")
        assert np.corrcoef(residence, score)[0, 1] > 0.3
        assert np.corrcoef(duration, score)[0, 1] < -0.2


@pytest.mark.parametrize(
    "factory", [students_toy, lambda: student_dataset(n_rows=60, seed=0),
                lambda: compas_dataset(n_rows=60, seed=0),
                lambda: german_credit_dataset(n_rows=60, seed=0)],
    ids=["toy", "student", "compas", "german_credit"],
)
def test_generators_produce_nonempty_domains(factory):
    dataset = factory()
    for attribute in dataset.schema:
        assert attribute.cardinality >= 1
        assert dataset.value_counts(attribute.name)
