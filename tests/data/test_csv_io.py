"""Tests for repro.data.csv_io."""

from __future__ import annotations

import pytest

from repro.data.csv_io import load_dataset, load_mapping, read_table, save_dataset, save_rows
from repro.data.dataset import Dataset
from repro.exceptions import DatasetError


@pytest.fixture()
def csv_path(tmp_path):
    path = tmp_path / "students.csv"
    path.write_text(
        "gender,school,grade\n"
        "F,GP,10\n"
        "M,MS,15\n"
        "F,MS,8\n",
        encoding="utf-8",
    )
    return path


class TestReadTable:
    def test_header_and_rows(self, csv_path):
        header, rows = read_table(csv_path)
        assert header == ["gender", "school", "grade"]
        assert rows == [["F", "GP", "10"], ["M", "MS", "15"], ["F", "MS", "8"]]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_table(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_table(path)


class TestLoadDataset:
    def test_numeric_columns_are_parsed(self, csv_path):
        dataset = load_dataset(csv_path, numeric=["grade"])
        assert dataset.attribute_names == ("gender", "school")
        assert list(dataset.numeric_column("grade")) == [10.0, 15.0, 8.0]

    def test_explicit_categorical_selection(self, csv_path):
        dataset = load_dataset(csv_path, categorical=["school"], numeric=["grade"])
        assert dataset.attribute_names == ("school",)

    def test_missing_columns_rejected(self, csv_path):
        with pytest.raises(DatasetError):
            load_dataset(csv_path, numeric=["missing"])
        with pytest.raises(DatasetError):
            load_dataset(csv_path, categorical=["missing"])

    def test_non_numeric_value_rejected(self, csv_path):
        with pytest.raises(DatasetError):
            load_dataset(csv_path, numeric=["school"])


class TestRoundTrip:
    def test_save_and_load_preserves_data(self, tmp_path):
        dataset = Dataset.from_columns(
            {"gender": ["F", "M"], "school": ["GP", "MS"]},
            numeric={"grade": [11.0, 14.5]},
        )
        path = tmp_path / "round.csv"
        save_dataset(dataset, path)
        reloaded = load_dataset(path, numeric=["grade"])
        assert reloaded.attribute_names == dataset.attribute_names
        assert reloaded.to_rows() == dataset.to_rows()
        assert list(reloaded.numeric_column("grade")) == [11.0, 14.5]

    def test_save_rows_and_load_mapping(self, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows(path, ["a", "b"], [(1, "x"), (2, "y")])
        mappings = load_mapping(path)
        assert mappings == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]
