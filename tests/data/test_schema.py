"""Tests for repro.data.schema."""

from __future__ import annotations

import pytest

from repro.data.schema import Attribute, Schema
from repro.exceptions import SchemaError, UnknownAttributeError, UnknownValueError


class TestAttribute:
    def test_code_and_value_round_trip(self):
        attribute = Attribute("color", ("red", "green", "blue"))
        for code, value in enumerate(("red", "green", "blue")):
            assert attribute.code(value) == code
            assert attribute.value(code) == value

    def test_cardinality_and_iteration(self):
        attribute = Attribute("size", ("S", "M", "L"))
        assert attribute.cardinality == 3
        assert list(attribute) == ["S", "M", "L"]
        assert "M" in attribute
        assert "XL" not in attribute

    def test_unknown_value_raises(self):
        attribute = Attribute("color", ("red",))
        with pytest.raises(UnknownValueError):
            attribute.code("purple")
        with pytest.raises(UnknownValueError):
            attribute.value(7)

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("color", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("color", ("red", "red"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", ("a",))


class TestSchema:
    def make_schema(self) -> Schema:
        return Schema(
            [
                Attribute("gender", ("F", "M")),
                Attribute("school", ("GP", "MS")),
                Attribute("grade", (1, 2, 3)),
            ]
        )

    def test_names_and_indices(self):
        schema = self.make_schema()
        assert schema.names == ("gender", "school", "grade")
        assert schema.index("school") == 1
        assert schema.attribute("grade").cardinality == 3
        assert schema["gender"].name == "gender"
        assert schema[2].name == "grade"

    def test_unknown_attribute_raises(self):
        schema = self.make_schema()
        with pytest.raises(UnknownAttributeError):
            schema.index("age")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", (1,)), Attribute("a", (2,))])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_from_rows_infers_domains_in_first_appearance_order(self):
        rows = [("F", "GP"), ("M", "GP"), ("F", "MS")]
        schema = Schema.from_rows(["gender", "school"], rows)
        assert schema.attribute("gender").values == ("F", "M")
        assert schema.attribute("school").values == ("GP", "MS")

    def test_from_rows_rejects_ragged_rows(self):
        with pytest.raises(SchemaError):
            Schema.from_rows(["a", "b"], [("x",)])

    def test_from_domains_preserves_order(self):
        schema = Schema.from_domains({"a": [1, 2], "b": ["x"]})
        assert schema.names == ("a", "b")
        assert schema.cardinalities == (2, 1)

    def test_project(self):
        schema = self.make_schema()
        projected = schema.project(["grade", "gender"])
        assert projected.names == ("grade", "gender")

    def test_total_patterns(self):
        schema = self.make_schema()
        # (2+1) * (2+1) * (3+1) - 1 = 35 non-empty patterns.
        assert schema.total_patterns() == 35

    def test_equality_and_hash(self):
        assert self.make_schema() == self.make_schema()
        assert hash(self.make_schema()) == hash(self.make_schema())
        assert self.make_schema() != Schema([Attribute("x", (1,))])
