"""Tests for repro.data.synthetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SCORE_COLUMN, SyntheticSpec, random_spec, synthetic_dataset
from repro.exceptions import DatasetError


class TestSyntheticSpec:
    def test_validation(self):
        with pytest.raises(DatasetError):
            SyntheticSpec(n_rows=0, cardinalities=[2])
        with pytest.raises(DatasetError):
            SyntheticSpec(n_rows=10, cardinalities=[])
        with pytest.raises(DatasetError):
            SyntheticSpec(n_rows=10, cardinalities=[2, 0])
        with pytest.raises(DatasetError):
            SyntheticSpec(n_rows=10, cardinalities=[2], score_weights=[1.0, 2.0])
        with pytest.raises(DatasetError):
            SyntheticSpec(n_rows=10, cardinalities=[2], noise=-1.0)
        with pytest.raises(DatasetError):
            SyntheticSpec(n_rows=10, cardinalities=[2], skew=0.0)

    def test_default_weights_are_zero(self):
        spec = SyntheticSpec(n_rows=5, cardinalities=[2, 3])
        assert np.allclose(spec.weights(), [0.0, 0.0])


class TestSyntheticDataset:
    def test_shape_and_score_column(self):
        spec = SyntheticSpec(n_rows=50, cardinalities=[2, 3, 4], seed=1)
        dataset = synthetic_dataset(spec)
        assert dataset.n_rows == 50
        assert dataset.n_attributes == 3
        assert dataset.attribute_names == ("A1", "A2", "A3")
        assert SCORE_COLUMN in dataset.numeric_names

    def test_deterministic_for_fixed_seed(self):
        spec = SyntheticSpec(n_rows=40, cardinalities=[2, 2], score_weights=[1.0, 0.0], seed=7)
        assert synthetic_dataset(spec) == synthetic_dataset(spec)

    def test_different_seeds_differ(self):
        base = SyntheticSpec(n_rows=40, cardinalities=[2, 2], seed=1)
        other = SyntheticSpec(n_rows=40, cardinalities=[2, 2], seed=2)
        assert synthetic_dataset(base) != synthetic_dataset(other)

    def test_score_correlates_with_weighted_attribute(self):
        spec = SyntheticSpec(
            n_rows=400, cardinalities=[2, 3], score_weights=[5.0, 0.0], noise=0.1, seed=3
        )
        dataset = synthetic_dataset(spec)
        scores = dataset.numeric_column(SCORE_COLUMN)
        codes = dataset.column_codes("A1")
        assert scores[codes == 1].mean() > scores[codes == 0].mean() + 3.0

    def test_domain_values_are_labelled(self):
        spec = SyntheticSpec(n_rows=10, cardinalities=[3], seed=0)
        dataset = synthetic_dataset(spec)
        assert set(dataset.column("A1")).issubset({"v0", "v1", "v2"})


class TestRandomSpec:
    def test_random_spec_is_deterministic_and_valid(self):
        spec_a = random_spec(seed=5)
        spec_b = random_spec(seed=5)
        assert spec_a == spec_b
        dataset = synthetic_dataset(spec_a)
        assert dataset.n_rows == spec_a.n_rows
        assert dataset.n_attributes == spec_a.n_attributes
