"""Tests for repro.data.dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.exceptions import DatasetError, SchemaError, UnknownAttributeError


@pytest.fixture()
def small_dataset() -> Dataset:
    columns = {
        "gender": ["F", "M", "F", "M", "F"],
        "school": ["GP", "GP", "MS", "MS", "GP"],
    }
    numeric = {"grade": [10.0, 12.0, 8.0, 15.0, 9.0]}
    return Dataset.from_columns(columns, numeric=numeric)


class TestConstruction:
    def test_from_rows_and_columns_agree(self, small_dataset: Dataset):
        rows = [("F", "GP"), ("M", "GP"), ("F", "MS"), ("M", "MS"), ("F", "GP")]
        from_rows = Dataset.from_rows(["gender", "school"], rows, numeric={"grade": [10, 12, 8, 15, 9]})
        assert from_rows == small_dataset

    def test_row_width_mismatch_rejected(self):
        # Schema inference spots the ragged row, so a SchemaError (sibling of
        # DatasetError under ReproError) is raised.
        with pytest.raises((DatasetError, SchemaError)):
            Dataset.from_rows(["a", "b"], [("x",)])

    def test_numeric_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            Dataset.from_columns({"a": ["x", "y"]}, numeric={"s": [1.0]})

    def test_inconsistent_column_lengths_rejected(self):
        with pytest.raises(DatasetError):
            Dataset.from_columns({"a": ["x", "y"], "b": ["u"]})

    def test_codes_outside_domain_rejected(self):
        schema = Schema([Attribute("a", ("x", "y"))])
        with pytest.raises(DatasetError):
            Dataset(schema, np.array([[2]]))

    def test_explicit_schema_shares_encoding(self):
        schema = Schema.from_domains({"a": ["x", "y", "z"]})
        dataset = Dataset.from_rows(["a"], [("z",), ("x",)], schema=schema)
        assert dataset.schema is schema
        assert list(dataset.column_codes("a")) == [2, 0]


class TestAccessors:
    def test_shape(self, small_dataset: Dataset):
        assert small_dataset.n_rows == 5
        assert small_dataset.n_attributes == 2
        assert len(small_dataset) == 5
        assert small_dataset.attribute_names == ("gender", "school")
        assert small_dataset.numeric_names == ("grade",)

    def test_column_decoding(self, small_dataset: Dataset):
        assert list(small_dataset.column("gender")) == ["F", "M", "F", "M", "F"]
        assert list(small_dataset.numeric_column("grade")) == [10.0, 12.0, 8.0, 15.0, 9.0]

    def test_unknown_numeric_column(self, small_dataset: Dataset):
        with pytest.raises(UnknownAttributeError):
            small_dataset.numeric_column("score")

    def test_row_and_full_row(self, small_dataset: Dataset):
        assert small_dataset.row(1) == {"gender": "M", "school": "GP"}
        assert small_dataset.full_row(1) == {"gender": "M", "school": "GP", "grade": 12.0}

    def test_value_counts(self, small_dataset: Dataset):
        assert small_dataset.value_counts("gender") == {"F": 3, "M": 2}

    def test_to_rows_round_trip(self, small_dataset: Dataset):
        assert small_dataset.to_rows()[0] == ("F", "GP")
        assert len(small_dataset.to_rows()) == 5


class TestMatching:
    def test_match_mask_and_count(self, small_dataset: Dataset):
        mask = small_dataset.match_mask({"gender": "F", "school": "GP"})
        assert list(mask) == [True, False, False, False, True]
        assert small_dataset.count({"gender": "F", "school": "GP"}) == 2

    def test_empty_assignment_matches_everything(self, small_dataset: Dataset):
        assert small_dataset.count({}) == 5

    def test_satisfies(self, small_dataset: Dataset):
        assert small_dataset.satisfies(0, {"gender": "F"})
        assert not small_dataset.satisfies(1, {"gender": "F"})


class TestDerivedDatasets:
    def test_take_reorders_rows_and_numeric(self, small_dataset: Dataset):
        reordered = small_dataset.take([3, 0])
        assert reordered.row(0) == {"gender": "M", "school": "MS"}
        assert list(reordered.numeric_column("grade")) == [15.0, 10.0]

    def test_head(self, small_dataset: Dataset):
        assert small_dataset.head(2).n_rows == 2
        assert small_dataset.head(100).n_rows == 5

    def test_filter(self, small_dataset: Dataset):
        filtered = small_dataset.filter({"school": "GP"})
        assert filtered.n_rows == 3
        assert set(filtered.column("school")) == {"GP"}

    def test_project_keeps_numeric_by_default(self, small_dataset: Dataset):
        projected = small_dataset.project(["school"])
        assert projected.attribute_names == ("school",)
        assert projected.numeric_names == ("grade",)
        assert projected.project(["school"], keep_numeric=False).numeric_names == ()

    def test_with_and_drop_numeric(self, small_dataset: Dataset):
        extended = small_dataset.with_numeric("bonus", [1, 2, 3, 4, 5])
        assert "bonus" in extended.numeric_names
        assert "bonus" not in extended.drop_numeric("bonus").numeric_names
        with pytest.raises(UnknownAttributeError):
            small_dataset.drop_numeric("missing")

    def test_codes_are_read_only(self, small_dataset: Dataset):
        with pytest.raises(ValueError):
            small_dataset.codes[0, 0] = 1


class TestFingerprint:
    def test_equal_datasets_share_a_fingerprint(self, small_dataset: Dataset):
        clone = Dataset(
            small_dataset.schema,
            small_dataset.codes.copy(),
            {name: small_dataset.numeric_column(name).copy()
             for name in small_dataset.numeric_names},
        )
        assert clone is not small_dataset
        assert clone.fingerprint() == small_dataset.fingerprint()
        assert small_dataset.same_data(clone)

    def test_fingerprint_is_cached(self, small_dataset: Dataset):
        first = small_dataset.fingerprint()
        assert small_dataset.fingerprint() is first

    def test_different_codes_change_fingerprint(self, small_dataset: Dataset):
        reordered = small_dataset.take([1, 0, 2, 3, 4])
        assert reordered.fingerprint() != small_dataset.fingerprint()
        assert not small_dataset.same_data(reordered)

    def test_different_numeric_changes_fingerprint(self, small_dataset: Dataset):
        bumped = small_dataset.with_numeric(
            "grade", small_dataset.numeric_column("grade") + 1.0
        )
        assert bumped.fingerprint() != small_dataset.fingerprint()

    def test_same_data_identity_fast_path(self, small_dataset: Dataset):
        # Identity never needs a digest.
        assert small_dataset.same_data(small_dataset)
        assert small_dataset._fingerprint is None or isinstance(
            small_dataset._fingerprint, str
        )

    def test_same_data_falls_back_to_full_equality(self, small_dataset: Dataset):
        # -0.0 vs 0.0 hashes differently but compares equal; same_data must agree
        # with == rather than with the digest.
        zeros = small_dataset.with_numeric("grade", np.zeros(5))
        negative_zeros = zeros.with_numeric("grade", -np.zeros(5))
        assert zeros.fingerprint() != negative_zeros.fingerprint()
        assert zeros == negative_zeros
        assert zeros.same_data(negative_zeros)
