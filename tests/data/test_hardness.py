"""Tests for the Theorem 3.3 worst-case construction."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.prop_bounds import PropBoundsDetector
from repro.data.hardness import expected_result_size, hardness_instance
from repro.exceptions import DatasetError
from repro.ranking.base import Ranking


class TestConstruction:
    def test_shape(self):
        instance = hardness_instance(6)
        assert instance.dataset.n_rows == 7
        assert instance.dataset.n_attributes == 6
        assert instance.k == 6
        assert instance.lower_bound == 4
        assert instance.alpha == pytest.approx(9 / 10)

    def test_tuple_structure(self):
        instance = hardness_instance(4)
        for index in range(4):
            row = instance.dataset.row(index)
            assert row[f"A{index + 1}"] == 1
            assert sum(value for value in row.values()) == 1
        assert all(value == 0 for value in instance.dataset.row(4).values())

    def test_odd_or_small_n_rejected(self):
        with pytest.raises(DatasetError):
            hardness_instance(3)
        with pytest.raises(DatasetError):
            hardness_instance(0)
        with pytest.raises(DatasetError):
            expected_result_size(5)

    def test_expected_result_size(self):
        assert expected_result_size(2) == 2
        assert expected_result_size(4) == 6
        assert expected_result_size(6) == 20


class TestExponentialResult:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_global_bounds_result_is_binomial(self, n):
        """The detector must report exactly C(n, n/2) most general biased patterns."""
        instance = hardness_instance(n)
        ranking = Ranking(instance.dataset, instance.order)
        detector = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=float(instance.lower_bound)),
            tau_s=2,
            k_min=instance.k,
            k_max=instance.k,
        )
        report = detector.detect(instance.dataset, ranking)
        groups = report.groups_at(instance.k)
        assert len(groups) == expected_result_size(n)
        # Every reported pattern assigns 0 to exactly n/2 attributes.
        for pattern in groups:
            assert len(pattern) == n // 2
            assert all(value == 0 for value in pattern.values())

    @pytest.mark.parametrize("n", [4, 6])
    def test_proportional_result_is_binomial(self, n):
        instance = hardness_instance(n)
        ranking = Ranking(instance.dataset, instance.order)
        detector = PropBoundsDetector(
            bound=ProportionalBoundSpec(alpha=instance.alpha),
            tau_s=2,
            k_min=instance.k,
            k_max=instance.k,
        )
        report = detector.detect(instance.dataset, ranking)
        groups = report.groups_at(instance.k)
        assert len(groups) == expected_result_size(n)
        for pattern in groups:
            assert len(pattern) == n // 2
            assert all(value == 0 for value in pattern.values())
