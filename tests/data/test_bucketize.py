"""Tests for repro.data.bucketize."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.bucketize import bucketize, equal_frequency, equal_width
from repro.exceptions import DatasetError


class TestEqualWidth:
    def test_simple_ranges(self):
        result = equal_width([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], bins=2)
        assert result.n_bins == 2
        assert result.edges == (0.0, 4.5, 9.0)
        assert result.labels[0] == "[0, 4.5)"
        assert result.labels[-1] == "[4.5, 9]"

    def test_every_value_gets_a_bin(self):
        values = [1.5, 3.2, 8.9, 0.1, 5.5]
        result = equal_width(values, bins=3)
        assert len(result.labels) == len(values)
        assert all(0 <= index < 3 for index in result.bin_indices)

    def test_constant_column_collapses_to_one_bin(self):
        result = equal_width([7.0, 7.0, 7.0], bins=4)
        assert result.n_bins == 1
        assert len(set(result.labels)) == 1

    def test_apply_to_new_values_clamps_out_of_range(self):
        result = equal_width([0.0, 10.0], bins=2)
        applied = result.apply([-5.0, 2.0, 25.0])
        assert applied[0] == result.label_of_bin(0)
        assert applied[-1] == result.label_of_bin(1)


class TestEqualFrequency:
    def test_balanced_counts(self):
        values = list(range(100))
        result = equal_frequency(values, bins=4)
        counts = np.bincount(result.bin_indices, minlength=result.n_bins)
        assert counts.min() >= 20  # roughly balanced quartiles

    def test_heavy_ties_reduce_bins_gracefully(self):
        values = [0.0] * 50 + [1.0] * 2
        result = equal_frequency(values, bins=4)
        assert result.n_bins >= 1
        assert len(result.labels) == 52


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(DatasetError):
            bucketize([1, 2, 3], bins=2, method="magic")

    def test_empty_input(self):
        with pytest.raises(DatasetError):
            equal_width([], bins=2)

    def test_nan_rejected(self):
        with pytest.raises(DatasetError):
            equal_width([1.0, float("nan")], bins=2)

    def test_non_positive_bins(self):
        with pytest.raises(DatasetError):
            equal_width([1.0, 2.0], bins=0)


class TestProperties:
    @given(
        values=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60),
        bins=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_bucketization_is_total_and_consistent(self, values, bins):
        """Every value is assigned a bin whose label matches the bin index."""
        result = bucketize(values, bins=bins, method="width")
        assert len(result.labels) == len(values)
        for label, index in zip(result.labels, result.bin_indices):
            assert label == result.label_of_bin(index)
            assert 0 <= index < result.n_bins

    @given(
        values=st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=2, max_size=60),
        bins=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_apply_is_consistent_with_original_assignment(self, values, bins):
        """Re-applying the bucketization to the original values reproduces the labels."""
        result = equal_width(values, bins=bins)
        assert result.apply(values) == list(result.labels)
