"""Smoke tests for the package-level public API."""

from __future__ import annotations

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} is exported but missing"

    def test_subpackages_importable(self):
        import repro.core
        import repro.data
        import repro.divergence
        import repro.experiments
        import repro.explain
        import repro.mlcore
        import repro.ranking

        for module in (
            repro.core,
            repro.data,
            repro.divergence,
            repro.experiments,
            repro.explain,
            repro.mlcore,
            repro.ranking,
        ):
            assert module.__doc__

    def test_exceptions_hierarchy(self):
        from repro import exceptions

        for name in (
            "SchemaError",
            "DatasetError",
            "RankingError",
            "BoundSpecError",
            "DetectionError",
            "ModelError",
            "NotFittedError",
            "ExplanationError",
            "ExperimentError",
        ):
            error_class = getattr(exceptions, name)
            assert issubclass(error_class, exceptions.ReproError)
