"""Shared fixtures for the test suite.

The fixtures deliberately use small inputs (the 16-row running example of the paper,
scaled-down synthetic workloads) so the whole suite stays fast while still covering
every code path of the library.
"""

from __future__ import annotations

import faulthandler
import os
import signal

import numpy as np
import pytest

from repro.core.pattern_graph import PatternCounter
from repro.data.dataset import Dataset
from repro.data.generators.student import student_dataset
from repro.data.generators.toy import students_toy
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker, Ranking
from repro.ranking.score import AttributeRanker
from repro.ranking.workloads import toy_ranker


# A hung test (the fault-tolerance suite deliberately wedges worker processes;
# a supervisor bug could leave the coordinator waiting forever) must fail the
# run, not stall it.  When the pytest-timeout plugin is installed (CI) it owns
# the job; otherwise fall back to SIGALRM: dump every thread's traceback and
# raise in the main thread, so fixtures and context managers still unwind
# (closing sessions reaps the worker pool — a hard abort would orphan it).
_TEST_TIMEOUT_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    use_fallback = (
        _TEST_TIMEOUT_SECONDS > 0
        and hasattr(signal, "SIGALRM")
        and not item.config.pluginmanager.hasplugin("timeout")
    )
    if not use_fallback:
        yield
        return

    def on_timeout(signum, frame):
        faulthandler.dump_traceback()
        raise pytest.fail.Exception(
            f"test exceeded the {_TEST_TIMEOUT_SECONDS:.0f}s timeout "
            "(REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, on_timeout)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def toy_dataset() -> Dataset:
    """The 16-student running example of Figure 1."""
    return students_toy()


@pytest.fixture(scope="session")
def toy_ranking(toy_dataset: Dataset) -> Ranking:
    """The Figure 1 ranking (grade descending, ties broken by fewer failures)."""
    return toy_ranker().rank(toy_dataset)


@pytest.fixture(scope="session")
def toy_counter(toy_dataset: Dataset, toy_ranking: Ranking) -> PatternCounter:
    return PatternCounter(toy_dataset, toy_ranking)


@pytest.fixture(scope="session")
def small_student_dataset() -> Dataset:
    """A 150-row, 10-attribute slice of the synthetic Student dataset.

    Restricting the attribute count keeps the pattern space small enough for the
    baseline IterTD runs used in the optimization-effect tests to finish quickly.
    """
    dataset = student_dataset(n_rows=150, seed=3)
    return dataset.project(dataset.attribute_names[:10])


@pytest.fixture(scope="session")
def small_student_ranking(small_student_dataset: Dataset) -> Ranking:
    return AttributeRanker(score_column="G3", descending=True).rank(small_student_dataset)


@pytest.fixture()
def synthetic_small() -> Dataset:
    """A deterministic 80-row synthetic dataset with 4 attributes and a score column."""
    spec = SyntheticSpec(
        n_rows=80,
        cardinalities=[2, 3, 2, 4],
        score_weights=[1.0, -0.5, 0.0, 0.25],
        noise=0.3,
        seed=42,
    )
    return synthetic_dataset(spec)


@pytest.fixture()
def synthetic_small_ranking(synthetic_small: Dataset) -> Ranking:
    return PrecomputedRanker(score_column="score").rank(synthetic_small)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
