"""Property-style parity tests: the engine path must be byte-identical to the seed.

The vectorized counting engine is a pure performance refactor — sizes, top-k counts
and every detector's per-k result sets must match the naive per-pattern reference
path (:class:`~repro.core.engine.naive.NaiveCounter`, a faithful copy of the seed
``PatternCounter``) and the brute-force oracle on randomized synthetic datasets,
including the edge cases ``k = 1``, ``k = n`` and ``tau_s = 1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec, step_lower_bounds
from repro.core.brute_force import brute_force_detection, enumerate_patterns
from repro.core.engine.kernels import NUMBA_AVAILABLE, available_kernels
from repro.core.engine.naive import NaiveCounter
from repro.core.engine.parallel import ExecutionConfig
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.iter_td import IterTDDetector
from repro.core.pattern import EMPTY_PATTERN
from repro.core.pattern_graph import PatternCounter
from repro.core.prop_bounds import PropBoundsDetector
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker

#: Deterministic parameterisation: (seed, n_rows, cardinalities, skew).
INSTANCES = [
    (11, 40, [2, 3], 1.0),
    (23, 60, [3, 2, 2], 0.6),
    (37, 80, [2, 2, 3, 2], 1.5),
    (51, 48, [4, 3], 0.8),
    (68, 72, [2, 3, 3], 1.0),
]


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=weights,
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


@pytest.mark.parametrize("seed,n_rows,cardinalities,skew", INSTANCES)
class TestCountParity:
    def test_sizes_and_top_k_counts_match_naive(self, seed, n_rows, cardinalities, skew):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        engine_counter = PatternCounter(dataset, ranking)
        naive = NaiveCounter(dataset, ranking)
        ks = np.asarray([1, 2, n_rows // 3, n_rows - 1, n_rows])
        for pattern in enumerate_patterns(dataset, include_empty=True):
            assert engine_counter.size(pattern) == naive.size(pattern)
            assert np.array_equal(
                engine_counter.top_k_counts(pattern, ks), naive.top_k_counts(pattern, ks)
            )

    def test_sibling_blocks_match_naive_blocks(self, seed, n_rows, cardinalities, skew):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        engine_counter = PatternCounter(dataset, ranking)
        naive = NaiveCounter(dataset, ranking)
        k = max(1, n_rows // 4)
        parents = [EMPTY_PATTERN] + list(engine_counter.tree.children(EMPTY_PATTERN))
        for parent in parents:
            engine_blocks = list(engine_counter.child_blocks(parent, k))
            naive_blocks = list(naive.child_blocks(parent, k))
            assert len(engine_blocks) == len(naive_blocks)
            for engine_block, naive_block in zip(engine_blocks, naive_blocks):
                assert engine_block.n_children == naive_block.n_children
                assert list(engine_block.qualifying(1)) == list(naive_block.qualifying(1))

    def test_row_satisfies_matches_naive(self, seed, n_rows, cardinalities, skew):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        engine_counter = PatternCounter(dataset, ranking)
        naive = NaiveCounter(dataset, ranking)
        ranks = [1, 2, n_rows // 2, n_rows]
        for pattern in enumerate_patterns(dataset):
            for rank in ranks:
                assert engine_counter.row_satisfies(rank, pattern) == naive.row_satisfies(
                    rank, pattern
                )


@pytest.mark.parametrize("seed,n_rows,cardinalities,skew", INSTANCES)
@pytest.mark.parametrize(
    "bound_factory",
    [
        lambda n: GlobalBoundSpec(lower_bounds=2.0),
        lambda n: GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 8: 3.0, 20: 5.0})),
        lambda n: ProportionalBoundSpec(alpha=0.8),
        lambda n: ProportionalBoundSpec(alpha=1.0),
    ],
)
class TestDetectorParity:
    """All three detectors, engine vs naive vs brute force, over the full k range."""

    def _detectors(self, bound, tau_s, k_min, k_max):
        detectors = [
            IterTDDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max),
            PropBoundsDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max),
        ]
        if not bound.pattern_dependent:
            detectors.append(
                GlobalBoundsDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
            )
        return detectors

    def _check(self, dataset, ranking, bound, tau_s, k_min, k_max):
        oracle_counter = PatternCounter(dataset, ranking)
        expected = brute_force_detection(dataset, oracle_counter, bound, tau_s, k_min, k_max)
        for detector in self._detectors(bound, tau_s, k_min, k_max):
            engine_report = detector.detect(dataset, ranking)
            naive_report = detector.detect(
                dataset, ranking, counter=NaiveCounter(dataset, ranking)
            )
            assert engine_report.result == expected, detector.name
            assert naive_report.result == expected, detector.name

    def test_per_k_result_sets_identical(self, seed, n_rows, cardinalities, skew, bound_factory):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        bound = bound_factory(n_rows)
        self._check(dataset, ranking, bound, tau_s=max(2, n_rows // 10), k_min=2, k_max=n_rows - 1)

    def test_edge_cases_k1_kn_tau1(self, seed, n_rows, cardinalities, skew, bound_factory):
        """k = 1, k = n and tau_s = 1 in one sweep over the full k range."""
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        bound = bound_factory(n_rows)
        self._check(dataset, ranking, bound, tau_s=1, k_min=1, k_max=n_rows)


@pytest.mark.parametrize("kernel", available_kernels())
@pytest.mark.parametrize("seed,n_rows,cardinalities,skew", INSTANCES[:3])
class TestKernelParity:
    """Every selectable kernel implementation vs the naive oracle, bit for bit.

    On numba-free machines this runs the numpy kernels only; with numba
    installed the compiled kernels join the same parametrisation, so parity is
    green with and without the optional accelerator.
    """

    def test_sizes_and_counts_match_naive_across_k_range(
        self, kernel, seed, n_rows, cardinalities, skew
    ):
        """Dense and sparse parents, k at both range ends, via both cache paths."""
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        # sparse_threshold=1.1 forces sparse storage everywhere; the default
        # exercises the dense representation for large matches.
        for sparse_threshold in (0.25, 1.1):
            counter = PatternCounter(
                dataset, ranking, kernel=kernel, sparse_threshold=sparse_threshold
            )
            naive = NaiveCounter(dataset, ranking)
            assert counter.engine.kernel_name == kernel
            for k in (1, 2, n_rows // 2, n_rows - 1, n_rows):
                parents = [EMPTY_PATTERN] + list(counter.tree.children(EMPTY_PATTERN))
                for parent in parents:
                    engine_blocks = list(counter.child_blocks(parent, k))
                    naive_blocks = list(naive.child_blocks(parent, k))
                    for engine_block, naive_block in zip(engine_blocks, naive_blocks):
                        assert engine_block.sizes.tolist() == list(naive_block.sizes)
                        assert engine_block.counts == list(naive_block.counts)

    def test_empty_blocks_and_cached_recounts(self, kernel, seed, n_rows, cardinalities, skew):
        """A parent with zero matching rows yields all-zero sizes and counts."""
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        counter = PatternCounter(dataset, ranking, kernel=kernel)
        schema = dataset.schema
        first, second = schema.attributes[0], schema.attributes[1]
        empty_parent = None
        for value_a in first.values:
            for value_b in second.values:
                candidate = EMPTY_PATTERN.extend(first.name, value_a).extend(
                    second.name, value_b
                )
                if counter.size(candidate) == 0:
                    empty_parent = candidate
                    break
            if empty_parent is not None:
                break
        if empty_parent is None:
            pytest.skip("instance has no empty two-attribute pattern")
        for block in counter.child_blocks(empty_parent, max(1, n_rows // 2)):
            assert block.sizes.sum() == 0
            assert sum(block.counts) == 0
        # The second pass re-counts through the cached BlockEntry (prefix path).
        for block in counter.child_blocks(empty_parent, 1):
            assert sum(block.counts) == 0

    def test_detectors_bit_identical_per_kernel(self, kernel, seed, n_rows, cardinalities, skew):
        """All three detectors produce the oracle result under every kernel."""
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        tau_s = max(2, n_rows // 10)
        oracle_counter = PatternCounter(dataset, ranking)
        bound = ProportionalBoundSpec(alpha=0.8)
        global_bound = GlobalBoundSpec(lower_bounds=2.0)
        expected_prop = brute_force_detection(
            dataset, oracle_counter, bound, tau_s, 2, n_rows - 1
        )
        expected_global = brute_force_detection(
            dataset, oracle_counter, global_bound, tau_s, 2, n_rows - 1
        )
        execution = ExecutionConfig(kernel=kernel)
        for detector, expected in (
            (IterTDDetector(bound=bound, tau_s=tau_s, k_min=2, k_max=n_rows - 1,
                            execution=execution), expected_prop),
            (PropBoundsDetector(bound=bound, tau_s=tau_s, k_min=2, k_max=n_rows - 1,
                                execution=execution), expected_prop),
            (GlobalBoundsDetector(bound=global_bound, tau_s=tau_s, k_min=2,
                                  k_max=n_rows - 1, execution=execution), expected_global),
        ):
            report = detector.detect(dataset, ranking)
            assert report.result == expected, (detector.name, kernel)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
def test_compiled_and_numpy_engines_bit_identical():
    """With numba present, the two kernel engines agree on every cached artifact."""
    dataset, ranking = _instance(29, 72, [3, 2, 3], 1.0)
    numpy_counter = PatternCounter(dataset, ranking, kernel="numpy")
    compiled_counter = PatternCounter(dataset, ranking, kernel="compiled")
    for k in (1, 36, 72):
        for parent in [EMPTY_PATTERN] + list(numpy_counter.tree.children(EMPTY_PATTERN)):
            for numpy_block, compiled_block in zip(
                numpy_counter.child_blocks(parent, k),
                compiled_counter.child_blocks(parent, k),
            ):
                assert numpy_block.sizes.tolist() == compiled_block.sizes.tolist()
                assert numpy_block.counts == compiled_block.counts
    for pattern in enumerate_patterns(dataset, include_empty=True):
        assert numpy_counter.size(pattern) == compiled_counter.size(pattern)


def test_parity_survives_cache_eviction():
    """A tiny LRU capacity (constant churn) must not change any result set."""
    dataset, ranking = _instance(91, 64, [2, 3, 2], 1.0)
    bound = ProportionalBoundSpec(alpha=0.9)
    detector = PropBoundsDetector(bound=bound, tau_s=2, k_min=1, k_max=64)
    reference = detector.detect(dataset, ranking)
    tiny_counter = PatternCounter(dataset, ranking, max_cached_masks=4)
    churned = detector.detect(dataset, ranking, counter=tiny_counter)
    assert churned.result == reference.result
    assert churned.stats.cache_evictions > 0


def test_engine_stats_published_on_reports():
    dataset, ranking = _instance(17, 50, [2, 2, 3], 1.0)
    detector = IterTDDetector(
        bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=1, k_max=25
    )
    report = detector.detect(dataset, ranking)
    stats = report.stats
    assert stats.batch_evaluations > 0
    assert stats.cache_hits > 0
    assert stats.dense_masks + stats.sparse_masks > 0
    assert stats.as_dict()["batch_evaluations"] == stats.batch_evaluations
