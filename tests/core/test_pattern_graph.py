"""Tests for repro.core.pattern_graph (SearchTree and PatternCounter)."""

from __future__ import annotations

from collections import deque

import pytest

from repro.core.brute_force import enumerate_patterns
from repro.core.pattern import EMPTY_PATTERN, Pattern
from repro.core.pattern_graph import PatternCounter, SearchTree
from repro.data.dataset import Dataset
from repro.data.generators.toy import students_toy
from repro.ranking.base import PrecomputedRanker, Ranking
from repro.ranking.workloads import toy_ranker


@pytest.fixture()
def toy():
    dataset = students_toy()
    return dataset, toy_ranker().rank(dataset)


class TestSearchTree:
    def test_children_of_empty_pattern(self, toy):
        dataset, _ = toy
        tree = SearchTree(dataset)
        children = list(tree.children(EMPTY_PATTERN))
        # Gender(2) + School(2) + Address(2) + Failures(3) = 9 single-attribute patterns.
        assert len(children) == 9
        assert Pattern({"Gender": "F"}) in children
        assert Pattern({"Failures": 2}) in children

    def test_children_only_add_higher_index_attributes(self, toy):
        """Definition 4.1: {G=F, S=GP} is a tree child of {G=F} but not of {S=GP}."""
        dataset, _ = toy
        tree = SearchTree(dataset)
        assert Pattern({"Gender": "F", "School": "GP"}) in list(tree.children(Pattern({"Gender": "F"})))
        assert Pattern({"Gender": "F", "School": "GP"}) not in list(
            tree.children(Pattern({"School": "GP"}))
        )

    def test_count_children_matches_generated(self, toy):
        dataset, _ = toy
        tree = SearchTree(dataset)
        for pattern in (EMPTY_PATTERN, Pattern({"School": "GP"}), Pattern({"Failures": 0})):
            assert tree.count_children(pattern) == len(list(tree.children(pattern)))

    def test_tree_parent(self, toy):
        dataset, _ = toy
        tree = SearchTree(dataset)
        pattern = Pattern({"Gender": "F", "Failures": 1})
        assert tree.tree_parent(pattern) == Pattern({"Gender": "F"})
        assert tree.tree_parent(EMPTY_PATTERN) is None

    def test_every_pattern_generated_exactly_once(self, toy):
        """Traversing the search tree enumerates the full pattern space without repeats."""
        dataset, _ = toy
        tree = SearchTree(dataset)
        seen: list[Pattern] = []
        queue = deque([EMPTY_PATTERN])
        while queue:
            pattern = queue.popleft()
            seen.append(pattern)
            queue.extend(tree.children(pattern))
        all_patterns = set(enumerate_patterns(dataset, include_empty=True))
        assert len(seen) == len(set(seen)) == len(all_patterns)
        assert set(seen) == all_patterns


class TestPatternCounter:
    def test_sizes_match_example_2_3(self, toy):
        dataset, ranking = toy
        counter = PatternCounter(dataset, ranking)
        pattern = Pattern({"School": "GP"})
        assert counter.size(pattern) == 8
        assert counter.top_k_count(pattern, 5) == 1

    def test_counts_match_dataset_and_ranking(self, toy):
        dataset, ranking = toy
        counter = PatternCounter(dataset, ranking)
        for pattern in enumerate_patterns(dataset):
            assert counter.size(pattern) == dataset.count(pattern)
            for k in (1, 4, 10, 16):
                assert counter.top_k_count(pattern, k) == ranking.count_in_top_k(pattern, k)

    def test_row_satisfies(self, toy):
        dataset, ranking = toy
        counter = PatternCounter(dataset, ranking)
        # Rank 1 is tuple 12: F / GP / U / 0 failures.
        assert counter.row_satisfies(1, Pattern({"Gender": "F", "School": "GP"}))
        assert not counter.row_satisfies(1, Pattern({"Gender": "M"}))

    def test_cache_and_clear(self, toy):
        dataset, ranking = toy
        counter = PatternCounter(dataset, ranking)
        counter.size(Pattern({"Gender": "F", "School": "GP"}))
        assert counter.cached_patterns > 0
        counter.clear_cache()
        assert counter.cached_patterns == 0

    def test_mismatched_dataset_rejected(self, toy):
        dataset, ranking = toy
        other = Dataset.from_columns({"x": ["a", "b"]}, numeric={"s": [1.0, 2.0]})
        other_ranking = PrecomputedRanker(score_column="s").rank(other)
        with pytest.raises(ValueError):
            PatternCounter(dataset, other_ranking)

    def test_mask_cache_limit_respected(self, toy):
        dataset, ranking = toy
        counter = PatternCounter(dataset, ranking, max_cached_masks=1)
        counter.size(Pattern({"Gender": "F"}))
        counter.size(Pattern({"Gender": "M"}))
        assert counter.cached_patterns <= 1
        # Counting still works without caching.
        assert counter.size(Pattern({"Gender": "M"})) == 8
