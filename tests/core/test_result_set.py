"""Tests for repro.core.result_set."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pattern import Pattern
from repro.core.result_set import (
    DetectedGroup,
    DetectionResult,
    MostGeneralSet,
    minimal_patterns,
)


class TestMostGeneralSet:
    def test_add_rejects_subsumed_patterns(self):
        antichain = MostGeneralSet()
        assert antichain.add(Pattern({"a": 1}))
        assert not antichain.add(Pattern({"a": 1, "b": 2}))
        assert len(antichain) == 1
        assert Pattern({"a": 1}) in antichain

    def test_add_removes_subsumed_members(self):
        antichain = MostGeneralSet([Pattern({"a": 1, "b": 2}), Pattern({"c": 3})])
        assert antichain.add(Pattern({"a": 1}))
        assert antichain.as_frozenset() == frozenset({Pattern({"a": 1}), Pattern({"c": 3})})

    def test_incomparable_patterns_coexist(self):
        antichain = MostGeneralSet([Pattern({"a": 1}), Pattern({"a": 2}), Pattern({"b": 1})])
        assert len(antichain) == 3

    def test_discard_and_contains_subset(self):
        antichain = MostGeneralSet([Pattern({"a": 1})])
        assert antichain.contains_subset_of(Pattern({"a": 1, "b": 2}))
        assert not antichain.contains_proper_subset_of(Pattern({"a": 1}))
        antichain.discard(Pattern({"a": 1}))
        assert len(antichain) == 0


class TestMinimalPatterns:
    def test_keeps_only_minimal_elements(self):
        patterns = [
            Pattern({"a": 1}),
            Pattern({"a": 1, "b": 2}),
            Pattern({"b": 2}),
            Pattern({"c": 3, "d": 4}),
        ]
        assert minimal_patterns(patterns) == frozenset(
            {Pattern({"a": 1}), Pattern({"b": 2}), Pattern({"c": 3, "d": 4})}
        )

    def test_duplicates_collapse(self):
        assert minimal_patterns([Pattern({"a": 1}), Pattern({"a": 1})]) == frozenset({Pattern({"a": 1})})

    @given(
        st.lists(
            st.dictionaries(
                keys=st.sampled_from(["a", "b", "c"]),
                values=st.integers(min_value=0, max_value=1),
                min_size=1,
                max_size=3,
            ),
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_minimal_set_is_an_antichain_covering_all_inputs(self, assignments):
        patterns = [Pattern(assignment) for assignment in assignments]
        minimal = minimal_patterns(patterns)
        # Antichain: no member subsumes another.
        for p in minimal:
            for q in minimal:
                if p != q:
                    assert not p.is_proper_subset_of(q)
        # Coverage: every input pattern has a minimal generalisation in the result.
        for pattern in patterns:
            assert any(member.is_subset_of(pattern) for member in minimal)


class TestDetectedGroup:
    def test_bias_gap_and_description(self):
        group = DetectedGroup(
            pattern=Pattern({"sex": "F"}), k=10, size_in_data=200, count_in_top_k=3, bound=8.0
        )
        assert group.bias_gap == pytest.approx(5.0)
        description = group.describe()
        assert "sex=F" in description and "k=10" in description


class TestDetectionResult:
    def make_result(self) -> DetectionResult:
        return DetectionResult(
            {
                11: [Pattern({"a": 1}), Pattern({"b": 2})],
                10: [Pattern({"a": 1})],
            }
        )

    def test_mapping_interface_sorted_by_k(self):
        result = self.make_result()
        assert list(result) == [10, 11]
        assert result[10] == frozenset({Pattern({"a": 1})})
        assert result.groups_at(99) == frozenset()

    def test_aggregations(self):
        result = self.make_result()
        assert result.total_reported() == 3
        assert result.max_groups_per_k() == 2
        assert result.all_groups() == frozenset({Pattern({"a": 1}), Pattern({"b": 2})})
        assert result.first_detection_k(Pattern({"b": 2})) == 11
        assert result.first_detection_k(Pattern({"z": 0})) is None

    def test_to_table(self):
        rows = self.make_result().to_table()
        assert rows[0] == (10, "a=1")
        assert (11, "b=2") in rows

    def test_equality(self):
        assert self.make_result() == self.make_result()
        assert self.make_result() == {10: {Pattern({"a": 1})}, 11: {Pattern({"a": 1}), Pattern({"b": 2})}}
        assert self.make_result() != DetectionResult({10: []})

    def test_empty_result(self):
        empty = DetectionResult({})
        assert empty.total_reported() == 0
        assert empty.max_groups_per_k() == 0
