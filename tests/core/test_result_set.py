"""Tests for repro.core.result_set."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pattern import Pattern
from repro.core.result_set import (
    DetectedGroup,
    DetectionResult,
    MostGeneralSet,
    minimal_patterns,
)


class TestMostGeneralSet:
    def test_add_rejects_subsumed_patterns(self):
        antichain = MostGeneralSet()
        assert antichain.add(Pattern({"a": 1}))
        assert not antichain.add(Pattern({"a": 1, "b": 2}))
        assert len(antichain) == 1
        assert Pattern({"a": 1}) in antichain

    def test_add_removes_subsumed_members(self):
        antichain = MostGeneralSet([Pattern({"a": 1, "b": 2}), Pattern({"c": 3})])
        assert antichain.add(Pattern({"a": 1}))
        assert antichain.as_frozenset() == frozenset({Pattern({"a": 1}), Pattern({"c": 3})})

    def test_incomparable_patterns_coexist(self):
        antichain = MostGeneralSet([Pattern({"a": 1}), Pattern({"a": 2}), Pattern({"b": 1})])
        assert len(antichain) == 3

    def test_discard_and_contains_subset(self):
        antichain = MostGeneralSet([Pattern({"a": 1})])
        assert antichain.contains_subset_of(Pattern({"a": 1, "b": 2}))
        assert not antichain.contains_proper_subset_of(Pattern({"a": 1}))
        antichain.discard(Pattern({"a": 1}))
        assert len(antichain) == 0

    def test_copy_is_independent(self):
        original = MostGeneralSet([Pattern({"a": 1}), Pattern({"b": 2})])
        duplicate = original.copy()
        assert duplicate.as_frozenset() == original.as_frozenset()
        duplicate.add(Pattern({"c": 3}))
        original.discard(Pattern({"a": 1}))
        assert Pattern({"c": 3}) not in original
        assert Pattern({"a": 1}) in duplicate
        assert len(original) == 1 and len(duplicate) == 3


class TestMinimalPatterns:
    def test_keeps_only_minimal_elements(self):
        patterns = [
            Pattern({"a": 1}),
            Pattern({"a": 1, "b": 2}),
            Pattern({"b": 2}),
            Pattern({"c": 3, "d": 4}),
        ]
        assert minimal_patterns(patterns) == frozenset(
            {Pattern({"a": 1}), Pattern({"b": 2}), Pattern({"c": 3, "d": 4})}
        )

    def test_duplicates_collapse(self):
        assert minimal_patterns([Pattern({"a": 1}), Pattern({"a": 1})]) == frozenset({Pattern({"a": 1})})

    @given(
        st.lists(
            st.dictionaries(
                keys=st.sampled_from(["a", "b", "c"]),
                values=st.integers(min_value=0, max_value=1),
                min_size=1,
                max_size=3,
            ),
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_minimal_set_is_an_antichain_covering_all_inputs(self, assignments):
        patterns = [Pattern(assignment) for assignment in assignments]
        minimal = minimal_patterns(patterns)
        # Antichain: no member subsumes another.
        for p in minimal:
            for q in minimal:
                if p != q:
                    assert not p.is_proper_subset_of(q)
        # Coverage: every input pattern has a minimal generalisation in the result.
        for pattern in patterns:
            assert any(member.is_subset_of(pattern) for member in minimal)


class TestDetectedGroup:
    def test_bias_gap_and_description(self):
        group = DetectedGroup(
            pattern=Pattern({"sex": "F"}), k=10, size_in_data=200, count_in_top_k=3, bound=8.0
        )
        assert group.bias_gap == pytest.approx(5.0)
        description = group.describe()
        assert "sex=F" in description and "k=10" in description


class TestDetectionResult:
    def make_result(self) -> DetectionResult:
        return DetectionResult(
            {
                11: [Pattern({"a": 1}), Pattern({"b": 2})],
                10: [Pattern({"a": 1})],
            }
        )

    def test_mapping_interface_sorted_by_k(self):
        result = self.make_result()
        assert list(result) == [10, 11]
        assert result[10] == frozenset({Pattern({"a": 1})})
        assert result.groups_at(99) == frozenset()

    def test_aggregations(self):
        result = self.make_result()
        assert result.total_reported() == 3
        assert result.max_groups_per_k() == 2
        assert result.all_groups() == frozenset({Pattern({"a": 1}), Pattern({"b": 2})})
        assert result.first_detection_k(Pattern({"b": 2})) == 11
        assert result.first_detection_k(Pattern({"z": 0})) is None

    def test_to_table(self):
        rows = self.make_result().to_table()
        assert rows[0] == (10, "a=1")
        assert (11, "b=2") in rows

    def test_equality(self):
        assert self.make_result() == self.make_result()
        assert self.make_result() == {10: {Pattern({"a": 1})}, 11: {Pattern({"a": 1}), Pattern({"b": 2})}}
        assert self.make_result() != DetectionResult({10: []})

    def test_empty_result(self):
        empty = DetectionResult({})
        assert empty.total_reported() == 0
        assert empty.max_groups_per_k() == 0

    def test_covers(self):
        sweep = DetectionResult({k: [] for k in range(5, 11)})
        assert sweep.covers(5, 10)
        assert sweep.covers(7, 7)
        assert not sweep.covers(4, 10)
        assert not sweep.covers(5, 11)
        gappy = DetectionResult({5: [], 7: []})
        assert not gappy.covers(5, 7)

    def test_restrict_k_slices_a_covering_sweep(self):
        sweep = DetectionResult(
            {k: [Pattern({"a": 1})] if k % 2 else [] for k in range(2, 9)}
        )
        sliced = sweep.restrict_k(3, 6)
        assert sliced.k_values == (3, 4, 5, 6)
        for k in sliced.k_values:
            assert sliced[k] == sweep[k]
        # Restriction to the full range reproduces the sweep exactly.
        assert sweep.restrict_k(2, 8) == sweep

    def test_restrict_k_rejects_uncovered_ranges(self):
        from repro.exceptions import DetectionError

        sweep = DetectionResult({k: [] for k in range(5, 11)})
        with pytest.raises(DetectionError):
            sweep.restrict_k(4, 8)
        with pytest.raises(DetectionError):
            sweep.restrict_k(8, 12)
        with pytest.raises(DetectionError):
            sweep.restrict_k(9, 8)

    def test_restrict_k_never_aliases_mutable_inputs(self):
        """A result sliced out of a sweep built from MostGeneralSet values stays
        stable if the originating sets are mutated afterwards."""
        live = MostGeneralSet([Pattern({"a": 1})])
        sweep = DetectionResult({5: live, 6: live.copy()})
        sliced = sweep.restrict_k(5, 6)
        live.add(Pattern({"b": 2}))
        live.discard(Pattern({"a": 1}))
        assert sliced[5] == frozenset({Pattern({"a": 1})})
        assert sweep[5] == frozenset({Pattern({"a": 1})})
