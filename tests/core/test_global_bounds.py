"""Tests for the GlobalBounds detector (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.brute_force import brute_force_detection
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.iter_td import IterTDDetector
from repro.core.pattern_graph import PatternCounter
from repro.exceptions import DetectionError


class TestValidation:
    def test_rejects_pattern_dependent_bounds(self):
        with pytest.raises(DetectionError):
            GlobalBoundsDetector(bound=ProportionalBoundSpec(alpha=0.8), tau_s=5, k_min=4, k_max=5)

    def test_rejects_bad_parameters(self):
        bound = GlobalBoundSpec(lower_bounds=2)
        with pytest.raises(DetectionError):
            GlobalBoundsDetector(bound=bound, tau_s=0, k_min=4, k_max=5)
        with pytest.raises(DetectionError):
            GlobalBoundsDetector(bound=bound, tau_s=5, k_min=0, k_max=5)
        with pytest.raises(DetectionError):
            GlobalBoundsDetector(bound=bound, tau_s=5, k_min=6, k_max=5)

    def test_rejects_k_beyond_dataset(self, toy_dataset, toy_ranking):
        detector = GlobalBoundsDetector(bound=GlobalBoundSpec(lower_bounds=2), tau_s=2, k_min=5, k_max=50)
        with pytest.raises(DetectionError):
            detector.detect(toy_dataset, toy_ranking)


class TestEquivalenceWithBaseline:
    @pytest.mark.parametrize("lower", [1, 2, 3, 5])
    @pytest.mark.parametrize("tau_s", [2, 4, 6])
    def test_matches_iter_td_on_toy_data(self, toy_dataset, toy_ranking, lower, tau_s):
        bound = GlobalBoundSpec(lower_bounds=lower)
        optimized = GlobalBoundsDetector(bound=bound, tau_s=tau_s, k_min=3, k_max=12).detect(
            toy_dataset, toy_ranking
        )
        baseline = IterTDDetector(bound=bound, tau_s=tau_s, k_min=3, k_max=12).detect(
            toy_dataset, toy_ranking
        )
        assert optimized.result == baseline.result

    def test_matches_brute_force_on_toy_data(self, toy_dataset, toy_ranking):
        bound = GlobalBoundSpec(lower_bounds=3)
        report = GlobalBoundsDetector(bound=bound, tau_s=3, k_min=4, k_max=10).detect(
            toy_dataset, toy_ranking
        )
        counter = PatternCounter(toy_dataset, toy_ranking)
        expected = brute_force_detection(toy_dataset, counter, bound, tau_s=3, k_min=4, k_max=10)
        assert report.result == expected

    def test_step_schedule_triggers_restart_and_stays_correct(self, toy_dataset, toy_ranking):
        """A bound that steps up mid-range forces a fresh search (Algorithm 2, line 5)."""
        bound = GlobalBoundSpec(lower_bounds={1: 1, 6: 2, 10: 4})
        optimized = GlobalBoundsDetector(bound=bound, tau_s=3, k_min=3, k_max=14).detect(
            toy_dataset, toy_ranking
        )
        baseline = IterTDDetector(bound=bound, tau_s=3, k_min=3, k_max=14).detect(
            toy_dataset, toy_ranking
        )
        assert optimized.result == baseline.result
        # The restart at k=6 and k=10 plus the initial search -> at least 3 full searches.
        assert optimized.stats.full_searches >= 3

    def test_matches_baseline_on_synthetic_data(self, synthetic_small, synthetic_small_ranking):
        bound = GlobalBoundSpec(lower_bounds=4)
        optimized = GlobalBoundsDetector(bound=bound, tau_s=5, k_min=5, k_max=30).detect(
            synthetic_small, synthetic_small_ranking
        )
        baseline = IterTDDetector(bound=bound, tau_s=5, k_min=5, k_max=30).detect(
            synthetic_small, synthetic_small_ranking
        )
        assert optimized.result == baseline.result


class TestOptimizationEffect:
    def test_examines_fewer_patterns_than_baseline(self, small_student_dataset, small_student_ranking):
        bound = GlobalBoundSpec(lower_bounds=5)
        kwargs = dict(bound=bound, tau_s=10, k_min=8, k_max=30)
        optimized = GlobalBoundsDetector(**kwargs).detect(small_student_dataset, small_student_ranking)
        baseline = IterTDDetector(**kwargs).detect(small_student_dataset, small_student_ranking)
        assert optimized.result == baseline.result
        assert optimized.stats.nodes_evaluated < baseline.stats.nodes_evaluated
        assert optimized.stats.full_searches < baseline.stats.full_searches

    def test_incremental_steps_recorded(self, toy_dataset, toy_ranking):
        report = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=8
        ).detect(toy_dataset, toy_ranking)
        assert report.stats.extra.get("incremental_steps", 0) == 4
        assert report.stats.full_searches == 1
