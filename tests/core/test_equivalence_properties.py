"""Property-based equivalence of the detection algorithms.

The central correctness property of the paper's optimized algorithms
(Propositions 4.5 and 4.8) is that they return exactly the same most general biased
patterns as the baseline for every k.  These tests generate random small datasets,
rankings and parameters with hypothesis and check that IterTD, GlobalBounds,
PropBounds and the brute-force oracle all agree.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.brute_force import brute_force_detection
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.iter_td import IterTDDetector
from repro.core.pattern_graph import PatternCounter
from repro.core.prop_bounds import PropBoundsDetector
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker


@st.composite
def detection_instances(draw):
    """A random small dataset, its score ranking, and random detection parameters."""
    n_attributes = draw(st.integers(min_value=1, max_value=4))
    cardinalities = [draw(st.integers(min_value=2, max_value=3)) for _ in range(n_attributes)]
    n_rows = draw(st.integers(min_value=12, max_value=60))
    weights = [draw(st.floats(min_value=-2.0, max_value=2.0)) for _ in range(n_attributes)]
    seed = draw(st.integers(min_value=0, max_value=10_000))
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=weights,
        noise=0.5,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)

    tau_s = draw(st.integers(min_value=1, max_value=max(2, n_rows // 4)))
    k_min = draw(st.integers(min_value=1, max_value=max(1, n_rows // 3)))
    k_max = draw(st.integers(min_value=k_min, max_value=n_rows))
    return dataset, ranking, tau_s, k_min, k_max


class TestGlobalBoundsEquivalence:
    @given(
        instance=detection_instances(),
        lower=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_algorithms_agree_with_brute_force(self, instance, lower):
        dataset, ranking, tau_s, k_min, k_max = instance
        bound = GlobalBoundSpec(lower_bounds=float(lower))
        counter = PatternCounter(dataset, ranking)
        expected = brute_force_detection(dataset, counter, bound, tau_s, k_min, k_max)

        iter_td = IterTDDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
        global_bounds = GlobalBoundsDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
        prop_engine = PropBoundsDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
        assert iter_td.detect(dataset, ranking).result == expected
        assert global_bounds.detect(dataset, ranking).result == expected
        assert prop_engine.detect(dataset, ranking).result == expected

    @given(
        instance=detection_instances(),
        steps=st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_step_schedules_agree(self, instance, steps):
        """Non-decreasing step schedules (the paper's assumption) preserve equivalence."""
        dataset, ranking, tau_s, k_min, k_max = instance
        span = max(1, (k_max - k_min) // max(1, len(steps)))
        schedule = {}
        bound_value = 0
        for index, increment in enumerate(sorted(steps)):
            bound_value += increment
            schedule[k_min + index * span] = float(bound_value)
        schedule.setdefault(1, float(min(schedule.values())))
        bound = GlobalBoundSpec(lower_bounds=schedule)

        baseline = IterTDDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
        optimized = GlobalBoundsDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
        assert baseline.detect(dataset, ranking).result == optimized.detect(dataset, ranking).result


class TestProportionalEquivalence:
    @given(
        instance=detection_instances(),
        alpha=st.floats(min_value=0.2, max_value=1.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_prop_bounds_agrees_with_brute_force(self, instance, alpha):
        dataset, ranking, tau_s, k_min, k_max = instance
        bound = ProportionalBoundSpec(alpha=alpha)
        counter = PatternCounter(dataset, ranking)
        expected = brute_force_detection(dataset, counter, bound, tau_s, k_min, k_max)

        baseline = IterTDDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
        optimized = PropBoundsDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max)
        assert baseline.detect(dataset, ranking).result == expected
        assert optimized.detect(dataset, ranking).result == expected

    @given(instance=detection_instances(), alpha=st.floats(min_value=0.2, max_value=1.2))
    @settings(max_examples=20, deadline=None)
    def test_reported_groups_really_violate_their_bounds(self, instance, alpha):
        """Soundness: every reported group has adequate size and violates its bound."""
        dataset, ranking, tau_s, k_min, k_max = instance
        bound = ProportionalBoundSpec(alpha=alpha)
        report = PropBoundsDetector(bound=bound, tau_s=tau_s, k_min=k_min, k_max=k_max).detect(
            dataset, ranking
        )
        counter = PatternCounter(dataset, ranking)
        for k in report.result:
            for pattern in report.groups_at(k):
                size = counter.size(pattern)
                assert size >= tau_s
                assert counter.top_k_count(pattern, k) < bound.lower(k, size, dataset.n_rows)
