"""Tests for the pluggable result store and resumable (extendable) sweeps.

The contract under test, in order of importance:

* **extension bit-identity** — a batch whose k range partially overlaps a cached
  sweep is served by resuming the sweep's frontier over the uncovered suffix,
  and the reports are identical to cold per-query runs, for all algorithms,
  serial and ``workers=2``, including randomized two-phase query mixes — while
  performing strictly fewer ``full_searches`` and ``batch_evaluations`` than
  the cold covering re-runs;
* **cross-process persistence** — a sweep saved through a
  :class:`DiskResultStore` in one session serves containment *and* partial hits
  in a genuinely fresh process, bit-identically;
* **robustness** — corrupted files, stale format versions and fingerprint
  mismatches degrade to cache misses, never errors, and a store can never serve
  another dataset's results;
* **sharing** — :func:`shared_result_store` makes sweeps reusable across
  sessions in one process; private stores stay private.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.bounds import (
    GlobalBoundSpec,
    ProportionalBoundSpec,
    step_lower_bounds,
)
from repro.core.engine.parallel import ExecutionConfig
from repro.core.planner import DetectionQuery, query_group_key
from repro.core.result_store import (
    DiskResultStore,
    InMemoryResultStore,
    clear_shared_result_stores,
    discard_shared_result_store,
    reset_shared_result_stores,
    shared_result_store,
    shared_result_store_names,
)
from repro.core.serialization import (
    MIN_SWEEP_FORMAT_VERSION,
    SWEEP_FORMAT_VERSION,
    frontier_from_dict,
    frontier_to_dict,
)
from repro.core.session import AuditSession, detect_biased_groups
from repro.core.top_down import SweepFrontier
from repro.core.pattern import Pattern
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker

STEP = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0, 30: 6.0}))
FLAT = GlobalBoundSpec(lower_bounds=2.0)
PROP = ProportionalBoundSpec(alpha=0.9)

EXECUTIONS = [
    pytest.param(None, id="serial"),
    pytest.param(ExecutionConfig(workers=2), id="workers2"),
]


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float = 1.0):
    rng = np.random.default_rng(seed)
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist(),
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


def _cold(dataset, ranking, query):
    return detect_biased_groups(
        dataset, ranking, query.effective_bound(), query.tau_s, query.k_min,
        query.k_max, algorithm=query.resolved_algorithm(),
    )


# -- frontier extension: bit-identity and strictly less work --------------------------
class TestFrontierExtension:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    @pytest.mark.parametrize(
        "algorithm,bound",
        [("iter_td", STEP), ("global_bounds", STEP), ("prop_bounds", PROP)],
    )
    def test_partial_overlap_extends_bit_identically(self, execution, algorithm, bound):
        dataset, ranking = _instance(311, 64, [2, 3, 2], 0.9)
        prefix = DetectionQuery(bound, 2, 2, 30, algorithm)
        overlapping = DetectionQuery(bound, 2, 5, 55, algorithm)
        with AuditSession(dataset, ranking, execution=execution) as session:
            session.run(prefix)
            extended = session.run(overlapping)
        cold = _cold(dataset, ranking, overlapping)
        assert extended.result == cold.result
        assert extended.stats.result_cache_partial_hits == 1
        assert extended.stats.extended_k_values == 25
        assert extended.stats.result_cache_misses == 0
        # Strictly fewer full searches and batch evaluations than the cold
        # covering re-run the pre-extension planner would have performed.
        assert extended.stats.full_searches < max(cold.stats.full_searches, 1)
        assert extended.stats.batch_evaluations < cold.stats.batch_evaluations

    def test_extension_widens_the_cached_sweep(self, ):
        dataset, ranking = _instance(313, 56, [2, 2, 3], 1.1)
        group = query_group_key(DetectionQuery(STEP, 2, 2, 20, "global_bounds"))
        with AuditSession(dataset, ranking) as session:
            session.run(DetectionQuery(STEP, 2, 2, 20, "global_bounds"))
            session.run(DetectionQuery(STEP, 2, 5, 40, "global_bounds"))
            fingerprint = dataset.fingerprint()
            assert session.result_cache.coverage(fingerprint, group) == ((2, 40),)
            # The widened sweep now serves containment hits over the whole range.
            report = session.run(DetectionQuery(STEP, 2, 30, 40, "global_bounds"))
            assert report.stats.result_cache_hits == 1
            assert report.stats.full_searches == 0

    def test_chained_extensions(self):
        dataset, ranking = _instance(317, 56, [2, 3], 1.0)
        with AuditSession(dataset, ranking) as session:
            session.run(DetectionQuery(PROP, 2, 2, 15, "prop_bounds"))
            second = session.run(DetectionQuery(PROP, 2, 2, 30, "prop_bounds"))
            third = session.run(DetectionQuery(PROP, 2, 10, 50, "prop_bounds"))
        assert second.stats.result_cache_partial_hits == 1
        assert third.stats.result_cache_partial_hits == 1
        cold = _cold(dataset, ranking, DetectionQuery(PROP, 2, 10, 50, "prop_bounds"))
        assert third.result == cold.result

    def test_upper_bounds_queries_extend_too(self):
        dataset, ranking = _instance(331, 56, [2, 3, 2], 1.0)
        first = DetectionQuery(PROP, 3, 2, 25, "upper_bounds", beta=1.8)
        second = DetectionQuery(PROP, 3, 5, 45, "upper_bounds", beta=1.8)
        with AuditSession(dataset, ranking) as session:
            session.run(first)
            extended = session.run(second)
        assert extended.stats.result_cache_partial_hits == 1
        cold = _cold(dataset, ranking, second)
        assert extended.result == cold.result
        # The extension reuses the cached candidate set: no fresh enumeration.
        assert extended.stats.size_computations == 0

    @pytest.mark.parametrize("execution", EXECUTIONS)
    @pytest.mark.parametrize("seed", [4001, 4002])
    def test_randomized_two_phase_mix_bit_identical(self, execution, seed):
        """Randomized prefix batch, then a randomized partially-overlapping
        batch: every report equals a fresh cold run, and at least one query of
        the second phase is served by extension."""
        rng = np.random.default_rng(seed)
        dataset, ranking = _instance(seed, 48, [2, 3, 2], float(rng.uniform(0.7, 1.3)))
        groups = [
            (STEP, "iter_td"), (STEP, "global_bounds"), (FLAT, "global_bounds"),
            (PROP, "prop_bounds"),
        ]
        phase_one, phase_two = [], []
        for bound, algorithm in groups:
            split = int(rng.integers(12, 25))
            phase_one.append(DetectionQuery(bound, 2, 2, split, algorithm))
            phase_two.append(
                DetectionQuery(bound, 2, int(rng.integers(2, split + 1)),
                               int(rng.integers(split + 5, 47)), algorithm)
            )
        cold_two = [_cold(dataset, ranking, q) for q in phase_two]
        with AuditSession(dataset, ranking, execution=execution) as session:
            session.run_many(phase_one)
            served = session.run_many(phase_two)
        for report, cold in zip(served, cold_two):
            assert report.result == cold.result
        assert sum(r.stats.result_cache_partial_hits for r in served) >= 1
        served_searches = sum(r.stats.full_searches for r in served)
        cold_searches = sum(r.stats.full_searches for r in cold_two)
        assert served_searches < cold_searches
        assert sum(r.stats.batch_evaluations for r in served) < sum(
            r.stats.batch_evaluations for r in cold_two
        )


# -- the shared (process-wide) store --------------------------------------------------
class TestSharedStore:
    def setup_method(self):
        reset_shared_result_stores()

    def teardown_method(self):
        reset_shared_result_stores()

    def test_sessions_share_sweeps_through_the_registry(self):
        dataset, ranking = _instance(401, 56, [2, 3], 1.0)
        with AuditSession(dataset, ranking, store=shared_result_store()) as session:
            session.run(DetectionQuery(STEP, 2, 2, 40, "global_bounds"))
        # A second session — different object, same registry — starts warm.
        with AuditSession(dataset, ranking, store=shared_result_store()) as session:
            contained = session.run(DetectionQuery(STEP, 2, 10, 30, "global_bounds"))
            extended = session.run(DetectionQuery(STEP, 2, 5, 50, "global_bounds"))
        assert contained.stats.result_cache_hits == 1
        assert contained.stats.full_searches == 0
        assert extended.stats.result_cache_partial_hits == 1
        cold = _cold(dataset, ranking, DetectionQuery(STEP, 2, 5, 50, "global_bounds"))
        assert extended.result == cold.result

    def test_named_registries_are_distinct(self):
        assert shared_result_store("a") is shared_result_store("a")
        assert shared_result_store("a") is not shared_result_store("b")

    def test_private_sessions_do_not_share(self):
        dataset, ranking = _instance(403, 48, [2, 3], 1.0)
        with AuditSession(dataset, ranking) as session:
            session.run(DetectionQuery(FLAT, 2, 2, 30, "global_bounds"))
        with AuditSession(dataset, ranking) as session:
            again = session.run(DetectionQuery(FLAT, 2, 2, 30, "global_bounds"))
        assert again.stats.result_cache_misses == 1

    def test_named_store_lifecycle_helpers(self):
        """A serving layer pools named stores per key; discard/clear are how it
        avoids leaking them when keys are unregistered or the process resets."""
        store_a = shared_result_store("svc:a")
        shared_result_store("svc:b")
        assert sorted(shared_result_store_names()) == ["svc:a", "svc:b"]
        # Discard drops the name; the next request under it starts cold.
        assert discard_shared_result_store("svc:a") is True
        assert discard_shared_result_store("svc:a") is False  # already gone
        assert shared_result_store_names() == ("svc:b",)
        assert shared_result_store("svc:a") is not store_a
        clear_shared_result_stores()
        assert shared_result_store_names() == ()
        # reset_* is the same operation under its older test-fixture name.
        shared_result_store("svc:c")
        reset_shared_result_stores()
        assert shared_result_store_names() == ()

    def test_discarded_store_keeps_serving_existing_holders(self):
        """Discarding unlinks the *name*; sessions already built over the store
        keep their reference — eviction/unregistration never yanks a store out
        from under a running query."""
        dataset, ranking = _instance(407, 48, [2, 3], 1.0)
        store = shared_result_store("svc:live")
        with AuditSession(dataset, ranking, store=store) as session:
            session.run(DetectionQuery(FLAT, 2, 2, 30, "global_bounds"))
            discard_shared_result_store("svc:live")
            again = session.run(DetectionQuery(FLAT, 2, 5, 20, "global_bounds"))
        assert again.stats.result_cache_hits == 1

    def test_fingerprint_keying_separates_datasets(self):
        store = shared_result_store("separation")
        dataset_a, ranking_a = _instance(405, 48, [2, 3], 1.0)
        dataset_b, ranking_b = _instance(406, 48, [2, 3], 1.0)
        query = DetectionQuery(FLAT, 2, 2, 30, "global_bounds")
        with AuditSession(dataset_a, ranking_a, store=store) as session:
            session.run(query)
        with AuditSession(dataset_b, ranking_b, store=store) as session:
            report = session.run(query)
        # Same canonical query, different ranking: must be a miss, and the
        # served result must equal dataset B's own cold run.
        assert report.stats.result_cache_misses == 1
        assert report.result == _cold(dataset_b, ranking_b, query).result


# -- the on-disk store ----------------------------------------------------------------
class TestDiskStore:
    def test_round_trip_within_process(self, tmp_path):
        dataset, ranking = _instance(411, 56, [2, 3, 2], 1.0)
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            original = session.run(DetectionQuery(STEP, 2, 2, 40, "global_bounds"))
        # A brand-new store object over the same directory (a fresh session in
        # the same process; the cross-process case is covered below).
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            contained = session.run(DetectionQuery(STEP, 2, 5, 30, "global_bounds"))
            extended = session.run(DetectionQuery(STEP, 2, 5, 55, "global_bounds"))
        assert contained.stats.result_cache_hits == 1
        assert contained.stats.full_searches == 0
        assert contained.result == _cold(
            dataset, ranking, DetectionQuery(STEP, 2, 5, 30, "global_bounds")
        ).result
        assert extended.stats.result_cache_partial_hits == 1
        assert extended.result == _cold(
            dataset, ranking, DetectionQuery(STEP, 2, 5, 55, "global_bounds")
        ).result
        assert original.result.restrict_k(5, 30) == contained.result

    def test_round_trip_in_a_fresh_process(self, tmp_path):
        """The acceptance criterion's cross-process leg: save in one session,
        serve a containment hit and a partial (extension) hit in a genuinely
        fresh Python process, bit-identically to cold runs."""
        dataset, ranking = _instance(413, 56, [2, 3], 1.0)
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(DetectionQuery(PROP, 2, 2, 30, "prop_bounds"))
        out_path = tmp_path / "child_out.json"
        script = f"""
import json
import numpy as np
from repro.core.bounds import ProportionalBoundSpec
from repro.core.planner import DetectionQuery
from repro.core.result_store import DiskResultStore
from repro.core.serialization import result_to_dict
from repro.core.session import AuditSession
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker

rng = np.random.default_rng(413)
spec = SyntheticSpec(
    n_rows=56, cardinalities=[2, 3],
    score_weights=rng.uniform(-1.5, 1.5, size=2).tolist(),
    noise=0.4, skew=1.0, seed=413,
)
dataset = synthetic_dataset(spec)
ranking = PrecomputedRanker(score_column="score").rank(dataset)
bound = ProportionalBoundSpec(alpha=0.9)
with AuditSession(dataset, ranking, store=DiskResultStore({str(tmp_path)!r})) as session:
    contained = session.run(DetectionQuery(bound, 2, 5, 25, "prop_bounds"))
    extended = session.run(DetectionQuery(bound, 2, 5, 45, "prop_bounds"))
json.dump({{
    "fingerprint": dataset.fingerprint(),
    "contained": result_to_dict(contained.result),
    "contained_hits": contained.stats.result_cache_hits,
    "contained_searches": contained.stats.full_searches,
    "extended": result_to_dict(extended.result),
    "extended_partial_hits": extended.stats.result_cache_partial_hits,
    "extended_k_values": extended.stats.extended_k_values,
    "extended_searches": extended.stats.full_searches,
    "extended_batches": extended.stats.batch_evaluations,
}}, open({str(out_path)!r}, "w"))
"""
        src = Path(__file__).resolve().parents[2] / "src"
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            timeout=300,
        )
        child = json.loads(out_path.read_text())
        assert child["fingerprint"] == dataset.fingerprint()
        from repro.core.serialization import result_from_dict

        cold_contained = _cold(dataset, ranking, DetectionQuery(PROP, 2, 5, 25, "prop_bounds"))
        cold_extended = _cold(dataset, ranking, DetectionQuery(PROP, 2, 5, 45, "prop_bounds"))
        assert result_from_dict(child["contained"]) == cold_contained.result
        assert child["contained_hits"] == 1 and child["contained_searches"] == 0
        assert result_from_dict(child["extended"]) == cold_extended.result
        assert child["extended_partial_hits"] == 1
        assert child["extended_k_values"] == 15
        assert child["extended_searches"] < max(cold_extended.stats.full_searches, 1)
        assert child["extended_batches"] < cold_extended.stats.batch_evaluations

    def test_corrupted_entry_degrades_to_a_miss(self, tmp_path):
        dataset, ranking = _instance(417, 48, [2, 3], 1.0)
        query = DetectionQuery(FLAT, 2, 2, 30, "global_bounds")
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(query)
        for path in tmp_path.glob("*.json"):
            path.write_text("{definitely not json", encoding="utf-8")
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=store) as session:
            report = session.run(query)
        assert report.stats.result_cache_misses == 1
        assert store.unreadable_entries >= 1
        assert report.result == _cold(dataset, ranking, query).result

    def test_stale_format_version_degrades_to_a_miss(self, tmp_path):
        dataset, ranking = _instance(419, 48, [2, 3], 1.0)
        query = DetectionQuery(FLAT, 2, 2, 30, "global_bounds")
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(query)
        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text())
            payload["sweep_format_version"] = MIN_SWEEP_FORMAT_VERSION - 1
            path.write_text(json.dumps(payload), encoding="utf-8")
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=store) as session:
            report = session.run(query)
        assert report.stats.result_cache_misses == 1
        assert store.unreadable_entries >= 1
        assert report.result == _cold(dataset, ranking, query).result

    def test_incomplete_frontier_degrades_to_a_miss(self, tmp_path):
        """A frontier mapping that lost one of its state tables (hand-edited or
        written by a divergent implementation) must never seed a resume."""
        dataset, ranking = _instance(427, 48, [2, 3], 1.0)
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(DetectionQuery(PROP, 2, 2, 25, "prop_bounds"))
        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text())
            del payload["frontier"]["sizes"]
            path.write_text(json.dumps(payload), encoding="utf-8")
        store = DiskResultStore(tmp_path)
        extending = DetectionQuery(PROP, 2, 2, 45, "prop_bounds")
        with AuditSession(dataset, ranking, store=store) as session:
            report = session.run(extending)
        assert report.stats.result_cache_partial_hits == 0
        assert report.stats.result_cache_misses == 1
        assert store.unreadable_entries >= 1
        assert report.result == _cold(dataset, ranking, extending).result

    def test_renamed_range_file_degrades_to_a_miss(self, tmp_path):
        """A file renamed to claim a wider k range than its payload holds must
        miss, not crash restriction with a partial covering result."""
        dataset, ranking = _instance(429, 48, [2, 3], 1.0)
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(DetectionQuery(FLAT, 2, 5, 15, "global_bounds"))
        (entry,) = list(tmp_path.glob("*.json"))
        digest = entry.stem.rsplit("_", 2)[0]
        entry.rename(tmp_path / f"{digest}_5_40.json")
        store = DiskResultStore(tmp_path)
        query = DetectionQuery(FLAT, 2, 5, 30, "global_bounds")
        with AuditSession(dataset, ranking, store=store) as session:
            report = session.run(query)
        assert report.stats.result_cache_misses == 1
        assert store.unreadable_entries >= 1
        assert report.result == _cold(dataset, ranking, query).result

    def test_frontier_query_mismatch_degrades_to_a_miss(self, tmp_path):
        """A frontier whose k no longer matches its own query (edited or
        corrupted) must never seed a resume."""
        dataset, ranking = _instance(431, 48, [2, 3], 1.0)
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(DetectionQuery(PROP, 2, 2, 15, "prop_bounds"))
        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text())
            payload["frontier"]["k"] = 10
            path.write_text(json.dumps(payload), encoding="utf-8")
        store = DiskResultStore(tmp_path)
        query = DetectionQuery(PROP, 2, 5, 25, "prop_bounds")
        with AuditSession(dataset, ranking, store=store) as session:
            report = session.run(query)
        assert report.stats.result_cache_partial_hits == 0
        assert report.stats.result_cache_misses == 1
        assert report.result == _cold(dataset, ranking, query).result

    def test_fingerprint_mismatch_never_serves_wrong_results(self, tmp_path):
        """Even a file renamed to another dataset's digest (simulating a digest
        collision or a mixed-up store directory) is re-validated on load."""
        dataset_a, ranking_a = _instance(421, 48, [2, 3], 1.0)
        dataset_b, ranking_b = _instance(422, 48, [2, 3], 1.0)
        query = DetectionQuery(FLAT, 2, 2, 30, "global_bounds")
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset_a, ranking_a, store=store) as session:
            session.run(query)
        (entry,) = list(tmp_path.glob("*.json"))
        # Forge dataset B's digest for dataset A's payload.
        digest_b = DiskResultStore._digest(
            dataset_b.fingerprint(), query_group_key(query)
        )
        entry.rename(tmp_path / f"{digest_b}_2_30.json")
        fresh = DiskResultStore(tmp_path)
        with AuditSession(dataset_b, ranking_b, store=fresh) as session:
            report = session.run(query)
        assert report.stats.result_cache_misses == 1
        assert fresh.unreadable_entries >= 1
        assert report.result == _cold(dataset_b, ranking_b, query).result

    def test_identity_keyed_bounds_are_not_persisted(self, tmp_path):
        dataset, ranking = _instance(423, 48, [2, 3], 1.0)
        callable_bound = GlobalBoundSpec(lower_bounds=lambda k: 2.0)
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=store) as session:
            report = session.run(DetectionQuery(callable_bound, 2, 2, 20, "iter_td"))
        assert report.stats.result_cache_misses == 1
        assert store.skipped_inserts == 1
        assert list(tmp_path.glob("*.json")) == []

    def test_wider_insert_subsumes_files(self, tmp_path):
        dataset, ranking = _instance(425, 48, [2, 3], 1.0)
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=store) as session:
            session.run(DetectionQuery(FLAT, 2, 5, 15, "global_bounds"))
            session.run(DetectionQuery(FLAT, 2, 2, 30, "global_bounds"))
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        assert len(names) == 1 and names[0].endswith("_2_30.json")


# -- disk-store hygiene: quarantine, size bound, concurrent writers -------------------
class TestNonPosixDegradation:
    def test_disk_store_works_without_fcntl(self, tmp_path, monkeypatch):
        """On platforms without :mod:`fcntl` the advisory writer lock degrades
        to a no-op and the store must stay fully functional (atomic replace
        remains the only cross-process guarantee): insert, containment lookup,
        eviction and clear all run without the module."""
        from repro.core import result_store as result_store_module

        monkeypatch.setattr(result_store_module, "_fcntl", None)
        dataset, ranking = _instance(439, 48, [2, 3], 1.0)
        store = DiskResultStore(tmp_path, max_entries=1)
        query = DetectionQuery(FLAT, 2, 2, 30, "global_bounds")
        with AuditSession(dataset, ranking, store=store,
                          result_cache_capacity=0) as session:
            session.run(query)
            served = session.run(DetectionQuery(FLAT, 2, 5, 20, "global_bounds"))
            assert served.stats.result_cache_hits == 1
            # The size bound still evicts (lock-free) when a second group lands.
            session.run(DetectionQuery(FLAT, 3, 2, 30, "global_bounds"))
        assert len(store) == 1
        assert store.evictions == 1
        # No advisory lock file was ever created, and clear() still works.
        assert not (tmp_path / ".lock").exists()
        store.clear()
        assert len(store) == 0


class TestDiskStoreHygiene:
    def test_corrupt_entry_is_quarantined_not_reparsed(self, tmp_path):
        """A corrupt file is renamed to *.corrupt on first contact, so later
        lookups neither re-parse nor re-count it — and the re-run sweep can
        repopulate the store under the same name."""
        from repro.core.engine.faults import FaultPlan

        dataset, ranking = _instance(433, 48, [2, 3], 1.0)
        query = DetectionQuery(FLAT, 2, 2, 30, "global_bounds")
        # The fault harness tears the first persisted entry mid-write.
        writer = DiskResultStore(tmp_path, fault_plan=FaultPlan(corrupt_store_inserts=(1,)))
        with AuditSession(dataset, ranking, store=writer) as session:
            session.run(query)
        assert len(writer) == 1  # the torn file is still a *.json at this point
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=store) as session:
            report = session.run(query)
        assert report.stats.result_cache_misses == 1
        assert report.result == _cold(dataset, ranking, query).result
        assert store.unreadable_entries == 1
        assert store.quarantined_entries == 1
        assert store.store_quarantined == 1
        quarantined = list(tmp_path.glob("*.json.corrupt"))
        assert len(quarantined) == 1
        # The miss re-ran the sweep and re-inserted a healthy entry...
        assert len(store) == 1
        # ...and a fresh store serves it without touching the quarantined file.
        fresh = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=fresh) as session:
            served = session.run(query)
        assert served.stats.result_cache_hits == 1
        assert fresh.unreadable_entries == 0
        assert fresh.quarantined_entries == 0

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        """The size bound evicts by mtime, and serving an entry refreshes its
        mtime — so the recently *used* sweep survives, not the recently written."""
        import time as time_module

        dataset, ranking = _instance(435, 48, [2, 3], 1.0)
        store = DiskResultStore(tmp_path, max_entries=2)
        query_a = DetectionQuery(FLAT, 2, 2, 20, "global_bounds")
        query_b = DetectionQuery(FLAT, 3, 2, 20, "global_bounds")
        query_c = DetectionQuery(FLAT, 4, 2, 20, "global_bounds")
        with AuditSession(dataset, ranking, store=store, result_cache_capacity=0) as session:
            session.run(query_a)
            time_module.sleep(0.02)
            session.run(query_b)
            time_module.sleep(0.02)
            # Serve A from disk: the hit touches its file, making B the LRU.
            served = session.run(DetectionQuery(FLAT, 2, 5, 15, "global_bounds"))
            assert served.stats.result_cache_hits == 1
            time_module.sleep(0.02)
            session.run(query_c)
        assert len(store) == 2
        assert store.evictions == 1
        fingerprint = dataset.fingerprint()
        assert store.coverage(fingerprint, query_group_key(query_a)) != ()
        assert store.coverage(fingerprint, query_group_key(query_b)) == ()
        assert store.coverage(fingerprint, query_group_key(query_c)) != ()

    def test_concurrent_writers_respect_bound(self, tmp_path):
        """Parallel inserts through the advisory lock keep the store within its
        bound and never lose or double-count an insert."""
        import threading

        dataset, ranking = _instance(437, 48, [2, 3], 1.0)
        query = DetectionQuery(FLAT, 2, 2, 10, "global_bounds")
        result = _cold(dataset, ranking, query).result
        fingerprint = dataset.fingerprint()
        store = DiskResultStore(tmp_path, max_entries=3)
        errors = []

        def writer(index: int) -> None:
            try:
                store.insert(fingerprint, ("group", index), query, result, None)
            except Exception as error:  # pragma: no cover - the assertion target
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.insertions == 8
        assert len(store) == 3
        assert store.evictions == 5
        assert (tmp_path / ".lock").exists()


# -- frontier serialisation -----------------------------------------------------------
class TestFrontierSerde:
    def test_round_trip(self):
        frontier = SweepFrontier(
            algorithm="prop_bounds",
            k=17,
            below={Pattern({"a": 1}): 3, Pattern({"a": 1, "b": 0}): 1},
            expanded={Pattern({"b": 2}): 9},
            sizes={Pattern({"a": 1}): 12, Pattern({"a": 1, "b": 0}): 5, Pattern({"b": 2}): 20},
        )
        loaded = frontier_from_dict(json.loads(json.dumps(frontier_to_dict(frontier))))
        assert loaded.algorithm == frontier.algorithm
        assert loaded.k == frontier.k
        assert loaded.below == frontier.below
        assert loaded.expanded == frontier.expanded
        assert loaded.sizes == frontier.sizes

    def test_as_state_copies(self):
        frontier = SweepFrontier(
            algorithm="global_bounds", k=5, below={Pattern({"a": 1}): 2}
        )
        state = frontier.as_state()
        state.below[Pattern({"b": 0})] = 1
        assert Pattern({"b": 0}) not in frontier.below

    def test_malformed_frontier_rejected(self):
        from repro.exceptions import DetectionError

        with pytest.raises(DetectionError):
            frontier_from_dict({"k": 3})
        with pytest.raises(DetectionError):
            frontier_from_dict({"algorithm": "iter_td", "k": 3, "below": "nope"})
