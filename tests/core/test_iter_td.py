"""Tests for the IterTD baseline detector."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.brute_force import brute_force_detection
from repro.core.iter_td import IterTDDetector
from repro.core.pattern_graph import PatternCounter


class TestIterTD:
    def test_one_full_search_per_k(self, toy_dataset, toy_ranking):
        report = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=9
        ).detect(toy_dataset, toy_ranking)
        assert report.stats.full_searches == 6
        assert report.result.k_values == tuple(range(4, 10))

    def test_supports_both_problem_definitions(self, toy_dataset, toy_ranking):
        global_report = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=6
        ).detect(toy_dataset, toy_ranking)
        prop_report = IterTDDetector(
            bound=ProportionalBoundSpec(alpha=0.9), tau_s=4, k_min=4, k_max=6
        ).detect(toy_dataset, toy_ranking)
        assert global_report.result.k_values == prop_report.result.k_values
        assert global_report.result != prop_report.result

    @pytest.mark.parametrize(
        "bound",
        [GlobalBoundSpec(lower_bounds=2), ProportionalBoundSpec(alpha=0.85)],
        ids=["global", "proportional"],
    )
    def test_matches_brute_force(self, toy_dataset, toy_ranking, bound):
        report = IterTDDetector(bound=bound, tau_s=3, k_min=2, k_max=13).detect(
            toy_dataset, toy_ranking
        )
        counter = PatternCounter(toy_dataset, toy_ranking)
        expected = brute_force_detection(toy_dataset, counter, bound, tau_s=3, k_min=2, k_max=13)
        assert report.result == expected

    def test_accepts_ranker_instead_of_ranking(self, toy_dataset):
        from repro.ranking.workloads import toy_ranker

        report = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranker())
        assert report.result.total_reported() > 0

    def test_empty_result_when_bound_trivial(self, toy_dataset, toy_ranking):
        report = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=0), tau_s=4, k_min=4, k_max=6
        ).detect(toy_dataset, toy_ranking)
        assert report.result.total_reported() == 0
