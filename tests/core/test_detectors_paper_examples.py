"""End-to-end detector tests against the worked examples of the paper.

Examples 2.4, 4.6 and 4.9 give concrete inputs and outputs over the Figure 1 data;
these tests pin the three detection algorithms to those outputs.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.iter_td import IterTDDetector
from repro.core.pattern import Pattern
from repro.core.prop_bounds import PropBoundsDetector

ALL_DETECTORS_GLOBAL = [IterTDDetector, GlobalBoundsDetector, PropBoundsDetector]
ALL_DETECTORS_PROP = [IterTDDetector, PropBoundsDetector]


class TestExample46GlobalBounds:
    """Global bounds, tau_s=4, k in [4, 5], L_4 = L_5 = 2."""

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS_GLOBAL)
    def test_k4_contains_papers_groups(self, detector_class, toy_dataset, toy_ranking):
        report = detector_class(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)
        groups_k4 = report.groups_at(4)
        assert Pattern({"Address": "U"}) in groups_k4
        assert Pattern({"Failures": 1}) in groups_k4

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS_GLOBAL)
    def test_k5_frontier_moves_exactly_as_in_the_paper(self, detector_class, toy_dataset, toy_ranking):
        report = detector_class(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)
        groups_k5 = report.groups_at(5)
        # Tuple 14 (rank 5) satisfies {Address=U} and {Failures=1}: both leave the
        # result set and their child {Address=U, Failures=1} joins it, together with
        # the four DRes patterns the paper lists.
        assert Pattern({"Address": "U"}) not in groups_k5
        assert Pattern({"Failures": 1}) not in groups_k5
        for expected in (
            Pattern({"Address": "U", "Failures": 1}),
            Pattern({"Gender": "F", "Address": "U"}),
            Pattern({"Gender": "M", "Address": "U"}),
            Pattern({"Gender": "F", "Failures": 1}),
            Pattern({"Address": "R", "Failures": 1}),
        ):
            assert expected in groups_k5

    def test_all_algorithms_agree(self, toy_dataset, toy_ranking):
        reports = [
            detector_class(
                bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
            ).detect(toy_dataset, toy_ranking)
            for detector_class in ALL_DETECTORS_GLOBAL
        ]
        assert reports[0].result == reports[1].result == reports[2].result


class TestExample49Proportional:
    """Proportional bounds, tau_s=5, alpha=0.9, k in [4, 5]."""

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS_PROP)
    def test_k4_result_matches_paper_exactly(self, detector_class, toy_dataset, toy_ranking):
        report = detector_class(
            bound=ProportionalBoundSpec(alpha=0.9), tau_s=5, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)
        assert report.groups_at(4) == frozenset(
            {Pattern({"School": "GP"}), Pattern({"Address": "U"}), Pattern({"Failures": 1})}
        )

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS_PROP)
    def test_k5_adds_gender_f(self, detector_class, toy_dataset, toy_ranking):
        """At k=5 the bound for {Gender=F} rises to 2.25 while its count stays 2."""
        report = detector_class(
            bound=ProportionalBoundSpec(alpha=0.9), tau_s=5, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)
        groups_k5 = report.groups_at(5)
        assert Pattern({"Gender": "F"}) in groups_k5
        # {Address=U} and {Failures=1} remain in the result (their bound rose too).
        assert Pattern({"Address": "U"}) in groups_k5
        assert Pattern({"Failures": 1}) in groups_k5
        assert Pattern({"School": "GP"}) in groups_k5

    def test_baseline_and_optimized_agree(self, toy_dataset, toy_ranking):
        reports = [
            detector_class(
                bound=ProportionalBoundSpec(alpha=0.9), tau_s=5, k_min=4, k_max=5
            ).detect(toy_dataset, toy_ranking)
            for detector_class in ALL_DETECTORS_PROP
        ]
        assert reports[0].result == reports[1].result


class TestExample24Constraint:
    """Example 2.4: with L_5,school = 2 only one GP student is in the top-5."""

    def test_school_gp_detected_at_k5(self, toy_dataset, toy_ranking):
        report = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=2, k_min=5, k_max=5
        ).detect(toy_dataset, toy_ranking)
        assert Pattern({"School": "GP"}) in report.groups_at(5)
        assert Pattern({"School": "MS"}) not in report.groups_at(5)
