"""Unit tests for the fused counting kernels and their selection logic.

The kernel layer (:mod:`repro.core.engine.kernels`) is the innermost hot loop of
the engine; these tests pin its contract against hand-computed expectations and
against a brute-force per-element reference, and lock down the selection rules
(``kernel="auto"`` resolution, the ``REPRO_FORCE_KERNEL`` override, and the typed
failure on an impossible ``"compiled"`` request).  Parity between the compiled
and numpy implementations at engine level lives in ``test_engine_parity.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine.kernels import (
    FORCE_KERNEL_ENV,
    NUMBA_AVAILABLE,
    CompiledKernels,
    NumpyKernels,
    available_kernels,
    get_kernels,
    resolve_kernel,
)
from repro.exceptions import ConfigurationError, DetectionError


def _implementations():
    implementations = [NumpyKernels]
    if NUMBA_AVAILABLE:
        implementations.append(CompiledKernels)
    return implementations


def _reference_evaluate(column, rows, k, cardinality):
    """Per-element oracle: what the fused pass must compute."""
    codes = [int(column[row]) for row in rows]
    sizes = [0] * cardinality
    counts = [0] * cardinality
    for row, code in zip(rows, codes):
        sizes[code] += 1
        if row < k:
            counts[code] += 1
    return codes, sizes, counts


@pytest.mark.parametrize("kernels", _implementations(), ids=lambda impl: impl.name)
class TestKernelContract:
    """Each implementation against hand computation and the brute-force oracle."""

    def test_evaluate_block_hand_computed(self, kernels):
        # rows are the parent's sorted rank positions; k=4 puts exactly the
        # first two of them (ranks 0 and 2) inside the top-k prefix.
        column = np.asarray([1, 0, 2, 1, 0, 2, 2, 1], dtype=np.int32)
        rows = np.asarray([0, 2, 5, 7], dtype=np.int64)
        codes, sizes, counts = kernels.evaluate_block(column, rows, 4, 3)
        assert codes.tolist() == [1, 2, 2, 1]
        assert sizes.tolist() == [0, 2, 2]
        assert counts.tolist() == [0, 1, 1]

    def test_evaluate_block_randomized_matches_reference(self, kernels):
        rng = np.random.default_rng(7)
        for trial in range(25):
            n_total = int(rng.integers(1, 60))
            cardinality = int(rng.integers(1, 6))
            column = rng.integers(0, cardinality, size=n_total).astype(np.int32)
            n_rows = int(rng.integers(0, n_total + 1))
            rows = np.sort(rng.choice(n_total, size=n_rows, replace=False)).astype(np.int64)
            for k in (0, 1, n_total // 2, n_total - 1, n_total):
                codes, sizes, counts = kernels.evaluate_block(column, rows, k, cardinality)
                ref_codes, ref_sizes, ref_counts = _reference_evaluate(
                    column, rows, k, cardinality
                )
                assert codes.tolist() == ref_codes
                assert sizes.tolist() == ref_sizes
                assert counts.tolist() == ref_counts
                recount = kernels.prefix_counts(rows, codes, k, cardinality)
                assert recount.tolist() == ref_counts

    def test_empty_rows(self, kernels):
        column = np.asarray([0, 1, 2], dtype=np.int32)
        rows = np.empty(0, dtype=np.int64)
        codes, sizes, counts = kernels.evaluate_block(column, rows, 2, 3)
        assert codes.shape == (0,)
        assert sizes.tolist() == [0, 0, 0]
        assert counts.tolist() == [0, 0, 0]
        assert kernels.prefix_counts(rows, codes, 2, 3).tolist() == [0, 0, 0]
        assert kernels.child_positions(rows, codes, 0).shape == (0,)
        assert kernels.select_positions(column, rows, 0).shape == (0,)

    def test_k_at_range_ends(self, kernels):
        column = np.asarray([0, 1, 0, 1, 0], dtype=np.int32)
        rows = np.arange(5, dtype=np.int64)
        _, _, at_zero = kernels.evaluate_block(column, rows, 0, 2)
        assert at_zero.tolist() == [0, 0]
        _, sizes, at_n = kernels.evaluate_block(column, rows, 5, 2)
        assert at_n.tolist() == sizes.tolist() == [3, 2]

    def test_child_and_select_positions(self, kernels):
        column = np.asarray([2, 0, 2, 1, 2, 0], dtype=np.int32)
        rows = np.asarray([0, 2, 3, 5], dtype=np.int64)
        codes = column[rows]
        assert kernels.child_positions(rows, codes, 2).tolist() == [0, 2]
        assert kernels.child_positions(rows, codes, 0).tolist() == [5]
        assert kernels.child_positions(rows, codes, 1).tolist() == [3]
        # select_positions fuses the gather: same answer without a codes array.
        for code in (0, 1, 2):
            assert (
                kernels.select_positions(column, rows, code).tolist()
                == kernels.child_positions(rows, codes, code).tolist()
            )

    def test_positions_preserve_row_dtype(self, kernels):
        column = np.asarray([0, 1, 0], dtype=np.int32)
        rows = np.asarray([0, 1, 2], dtype=np.int32)
        codes = column[rows]
        assert kernels.child_positions(rows, codes, 0).dtype == rows.dtype
        assert kernels.select_positions(column, rows, 0).dtype == rows.dtype


class TestKernelSelection:
    def test_available_and_resolution_consistent(self):
        kernels = available_kernels()
        assert "numpy" in kernels
        assert ("compiled" in kernels) == NUMBA_AVAILABLE
        assert resolve_kernel("numpy") == "numpy"
        assert get_kernels("numpy") is NumpyKernels

    def test_auto_prefers_compiled_when_available(self, monkeypatch):
        monkeypatch.delenv(FORCE_KERNEL_ENV, raising=False)
        expected = "compiled" if NUMBA_AVAILABLE else "numpy"
        assert resolve_kernel("auto") == expected

    def test_force_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(FORCE_KERNEL_ENV, "numpy")
        assert resolve_kernel("auto") == "numpy"
        assert get_kernels("auto") is NumpyKernels
        # The override only applies to "auto": explicit choices win.
        assert resolve_kernel("numpy") == "numpy"

    def test_force_env_invalid_value_rejected(self, monkeypatch):
        monkeypatch.setenv(FORCE_KERNEL_ENV, "fortran")
        with pytest.raises(ConfigurationError):
            resolve_kernel("auto")

    def test_unknown_kernel_rejected_typed(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_kernel("fused")
        assert isinstance(excinfo.value, DetectionError)

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs a numba-free interpreter")
    def test_explicit_compiled_without_numba_fails_fast(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="numba"):
            resolve_kernel("compiled")
        # A forced env override to an unavailable kernel must also fail loudly
        # rather than silently downgrade.
        monkeypatch.setenv(FORCE_KERNEL_ENV, "compiled")
        with pytest.raises(ConfigurationError, match="numba"):
            resolve_kernel("auto")
