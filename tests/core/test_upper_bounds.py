"""Tests for the upper-bound variants (most specific substantial patterns)."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.brute_force import enumerate_patterns
from repro.core.pattern import Pattern
from repro.core.upper_bounds import (
    UpperBoundsDetector,
    most_general_above_upper,
    most_specific_substantial,
    substantial_patterns,
)
from repro.exceptions import DetectionError


class TestSubstantialPatterns:
    def test_matches_definition(self, toy_counter, toy_dataset):
        tau_s = 4
        substantial = substantial_patterns(toy_counter, tau_s)
        expected = {
            pattern: toy_dataset.count(pattern)
            for pattern in enumerate_patterns(toy_dataset)
            if toy_dataset.count(pattern) >= tau_s
        }
        assert substantial == expected

    def test_sizes_recorded(self, toy_counter):
        substantial = substantial_patterns(toy_counter, 6)
        for pattern, size in substantial.items():
            assert size == toy_counter.size(pattern) >= 6


class TestMostSpecificSubstantial:
    def test_every_specialisation_falls_below_threshold(self, toy_counter, toy_dataset):
        tau_s = 4
        most_specific = most_specific_substantial(toy_counter, tau_s)
        assert most_specific  # the toy data has at least one such pattern
        for pattern, size in most_specific.items():
            assert size >= tau_s
            for attribute in toy_dataset.schema:
                if attribute.name in pattern:
                    continue
                for value in attribute.values:
                    child = pattern.extend(attribute.name, value)
                    assert toy_dataset.count(child) < tau_s

    def test_none_is_a_subset_of_another(self, toy_counter):
        most_specific = most_specific_substantial(toy_counter, 4)
        patterns = list(most_specific)
        for p in patterns:
            for q in patterns:
                if p != q:
                    assert not p.is_proper_subset_of(q) or True  # comparable pairs allowed only if both most specific
        # A pattern strictly containing another most-specific pattern would contradict
        # the definition, since the superset would prove the subset is not most specific.
        for p in patterns:
            for q in patterns:
                if p != q:
                    assert not p.is_proper_superset_of(q)


class TestUpperBoundsDetector:
    def test_requires_upper_bounds(self):
        with pytest.raises(DetectionError):
            UpperBoundsDetector(bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5)

    def test_detects_over_represented_most_specific_groups(self, toy_dataset, toy_ranking):
        bound = GlobalBoundSpec(lower_bounds=0, upper_bounds=2)
        report = UpperBoundsDetector(bound=bound, tau_s=4, k_min=5, k_max=5).detect(
            toy_dataset, toy_ranking
        )
        groups = report.groups_at(5)
        assert groups, "some group exceeds the upper bound of 2 in the top-5"
        counter_groups_ok = all(
            toy_ranking.count_in_top_k(pattern, 5) > 2 and toy_dataset.count(pattern) >= 4
            for pattern in groups
        )
        assert counter_groups_ok

    def test_proportional_upper_bound(self, toy_dataset, toy_ranking):
        bound = ProportionalBoundSpec(alpha=0.1, beta=1.1)
        report = UpperBoundsDetector(bound=bound, tau_s=4, k_min=5, k_max=6).detect(
            toy_dataset, toy_ranking
        )
        for k in report.result:
            for pattern in report.groups_at(k):
                size = toy_dataset.count(pattern)
                assert toy_ranking.count_in_top_k(pattern, k) > 1.1 * size * k / 16


class TestMostGeneralAboveUpper:
    def test_results_violate_and_are_minimal(self, toy_counter, toy_dataset, toy_ranking):
        bound = GlobalBoundSpec(lower_bounds=0, upper_bounds=1)
        result = most_general_above_upper(toy_counter, bound, tau_s=4, k=5)
        assert result
        for pattern in result:
            assert toy_ranking.count_in_top_k(pattern, 5) > 1
            for other in result:
                if other != pattern:
                    assert not other.is_proper_subset_of(pattern)
