"""Tests for the PropBounds detector (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.brute_force import brute_force_detection
from repro.core.iter_td import IterTDDetector
from repro.core.pattern_graph import PatternCounter
from repro.core.prop_bounds import PropBoundsDetector


class TestEquivalenceWithBaseline:
    @pytest.mark.parametrize("alpha", [0.5, 0.8, 0.9, 1.2])
    @pytest.mark.parametrize("tau_s", [3, 5])
    def test_matches_iter_td_on_toy_data(self, toy_dataset, toy_ranking, alpha, tau_s):
        bound = ProportionalBoundSpec(alpha=alpha)
        optimized = PropBoundsDetector(bound=bound, tau_s=tau_s, k_min=3, k_max=14).detect(
            toy_dataset, toy_ranking
        )
        baseline = IterTDDetector(bound=bound, tau_s=tau_s, k_min=3, k_max=14).detect(
            toy_dataset, toy_ranking
        )
        assert optimized.result == baseline.result

    def test_matches_brute_force_on_toy_data(self, toy_dataset, toy_ranking):
        bound = ProportionalBoundSpec(alpha=0.9)
        report = PropBoundsDetector(bound=bound, tau_s=4, k_min=4, k_max=12).detect(
            toy_dataset, toy_ranking
        )
        counter = PatternCounter(toy_dataset, toy_ranking)
        expected = brute_force_detection(toy_dataset, counter, bound, tau_s=4, k_min=4, k_max=12)
        assert report.result == expected

    def test_matches_baseline_on_synthetic_data(self, synthetic_small, synthetic_small_ranking):
        bound = ProportionalBoundSpec(alpha=0.8)
        optimized = PropBoundsDetector(bound=bound, tau_s=5, k_min=5, k_max=35).detect(
            synthetic_small, synthetic_small_ranking
        )
        baseline = IterTDDetector(bound=bound, tau_s=5, k_min=5, k_max=35).detect(
            synthetic_small, synthetic_small_ranking
        )
        assert optimized.result == baseline.result

    def test_accepts_pattern_independent_bounds_too(self, toy_dataset, toy_ranking):
        """The k-tilde machinery also handles global (pattern-independent) schedules."""
        bound = GlobalBoundSpec(lower_bounds={1: 1, 5: 2, 9: 3})
        optimized = PropBoundsDetector(bound=bound, tau_s=3, k_min=3, k_max=12).detect(
            toy_dataset, toy_ranking
        )
        baseline = IterTDDetector(bound=bound, tau_s=3, k_min=3, k_max=12).detect(
            toy_dataset, toy_ranking
        )
        assert optimized.result == baseline.result


class TestOptimizationEffect:
    def test_examines_fewer_patterns_than_baseline(self, small_student_dataset, small_student_ranking):
        bound = ProportionalBoundSpec(alpha=0.8)
        kwargs = dict(bound=bound, tau_s=10, k_min=8, k_max=30)
        optimized = PropBoundsDetector(**kwargs).detect(small_student_dataset, small_student_ranking)
        baseline = IterTDDetector(**kwargs).detect(small_student_dataset, small_student_ranking)
        assert optimized.result == baseline.result
        assert optimized.stats.nodes_evaluated < baseline.stats.nodes_evaluated
        assert optimized.stats.full_searches == 1

    def test_k_tilde_scheduling_happens(self, toy_dataset, toy_ranking):
        report = PropBoundsDetector(
            bound=ProportionalBoundSpec(alpha=0.9), tau_s=5, k_min=4, k_max=10
        ).detect(toy_dataset, toy_ranking)
        assert report.stats.extra.get("k_tilde_scheduled", 0) > 0
        assert report.stats.extra.get("incremental_steps", 0) == 6


class TestResultShape:
    def test_results_are_most_general(self, synthetic_small, synthetic_small_ranking):
        report = PropBoundsDetector(
            bound=ProportionalBoundSpec(alpha=0.9), tau_s=5, k_min=5, k_max=25
        ).detect(synthetic_small, synthetic_small_ranking)
        for k in report.result:
            groups = report.groups_at(k)
            for p in groups:
                for q in groups:
                    if p != q:
                        assert not p.is_proper_subset_of(q)

    def test_detected_groups_violate_their_bound(self, synthetic_small, synthetic_small_ranking):
        alpha = 0.9
        report = PropBoundsDetector(
            bound=ProportionalBoundSpec(alpha=alpha), tau_s=5, k_min=5, k_max=25
        ).detect(synthetic_small, synthetic_small_ranking)
        counter = PatternCounter(synthetic_small, synthetic_small_ranking)
        n = synthetic_small.n_rows
        for k in report.result:
            for pattern in report.groups_at(k):
                size = counter.size(pattern)
                assert size >= 5
                assert counter.top_k_count(pattern, k) < alpha * size * k / n


class TestTouchedSetSnapshot:
    def test_no_double_bump_when_step_bound_demotes_touched_pattern(self):
        """Regression test: the touched sets of one incremental step are snapshotted.

        With a step-function bound, an expanded pattern satisfied by the new tuple
        can be demoted to below in step 1a (the bound stepped up faster than its
        count).  It must then *not* be bumped a second time for the same tuple in
        step 1b, which would silently re-promote it with an inflated count and lose
        it from every later result set.
        """
        import numpy as np

        from repro.core.bounds import step_lower_bounds
        from repro.data.synthetic import SyntheticSpec, synthetic_dataset
        from repro.ranking.base import PrecomputedRanker

        rng = np.random.default_rng(11)
        spec = SyntheticSpec(
            n_rows=40,
            cardinalities=[2, 3],
            score_weights=rng.uniform(-1.5, 1.5, size=2).tolist(),
            noise=0.4,
            seed=11,
        )
        dataset = synthetic_dataset(spec)
        ranking = PrecomputedRanker(score_column="score").rank(dataset)
        bound = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 8: 3.0, 20: 5.0}))
        counter = PatternCounter(dataset, ranking)
        expected = brute_force_detection(dataset, counter, bound, 4, 2, 39)
        report = PropBoundsDetector(bound=bound, tau_s=4, k_min=2, k_max=39).detect(
            dataset, ranking
        )
        assert report.result == expected
