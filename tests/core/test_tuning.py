"""Tests for repro.core.tuning (automatic threshold suggestion)."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.prop_bounds import PropBoundsDetector
from repro.core.tuning import suggest_alpha, suggest_lower_bound, suggest_size_threshold
from repro.exceptions import DetectionError


class TestSuggestAlpha:
    def test_suggestion_is_feasible(self, synthetic_small, synthetic_small_ranking):
        # Note: groups with zero tuples in some top-k are flagged for any alpha > 0,
        # so the reachable minimum is not zero; a target of 8 is attainable here.
        result = suggest_alpha(
            synthetic_small,
            synthetic_small_ranking,
            tau_s=5,
            k_min=5,
            k_max=25,
            target_max_groups=8,
        )
        assert result.max_groups_per_k <= 8
        # Re-running the detector with the suggested alpha reproduces the report.
        report = PropBoundsDetector(
            bound=ProportionalBoundSpec(alpha=result.parameter), tau_s=5, k_min=5, k_max=25
        ).detect(synthetic_small, synthetic_small_ranking)
        assert report.result == result.report.result

    def test_large_target_returns_upper_end(self, toy_dataset, toy_ranking):
        result = suggest_alpha(
            toy_dataset, toy_ranking, tau_s=4, k_min=4, k_max=8,
            target_max_groups=1000, alpha_range=(0.1, 1.5),
        )
        assert result.parameter == pytest.approx(1.5)

    def test_infeasible_range_rejected(self, toy_dataset, toy_ranking):
        # Even a tiny alpha flags at least one group here, so a target of zero fails.
        with pytest.raises(DetectionError):
            suggest_alpha(
                toy_dataset, toy_ranking, tau_s=2, k_min=4, k_max=10,
                target_max_groups=0, alpha_range=(0.9, 1.2),
            )
        with pytest.raises(DetectionError):
            suggest_alpha(toy_dataset, toy_ranking, 4, 4, 8, alpha_range=(1.0, 0.5))


class TestSuggestLowerBound:
    def test_suggestion_is_feasible_and_nontrivial(self, toy_dataset, toy_ranking):
        result = suggest_lower_bound(
            toy_dataset, toy_ranking, tau_s=4, k_min=4, k_max=10, target_max_groups=4
        )
        assert result.max_groups_per_k <= 4
        assert 0.0 <= result.parameter <= 10.0

    def test_zero_bound_reports_nothing(self, toy_dataset, toy_ranking):
        result = suggest_lower_bound(
            toy_dataset, toy_ranking, tau_s=4, k_min=4, k_max=6,
            target_max_groups=0, max_bound=0.0,
        )
        assert result.total_reported == 0


class TestSuggestSizeThreshold:
    def test_smallest_concise_threshold(self, toy_dataset, toy_ranking):
        bound = GlobalBoundSpec(lower_bounds=2)
        result = suggest_size_threshold(
            toy_dataset, toy_ranking, bound, k_min=4, k_max=8, target_max_groups=4
        )
        assert result.max_groups_per_k <= 4
        assert 1 <= result.parameter <= 16
        # One step below the suggestion (if any) would exceed the target, unless the
        # suggestion is already the lower end of the range.
        if result.parameter > 1:
            from repro.core.global_bounds import GlobalBoundsDetector

            below = GlobalBoundsDetector(
                bound=bound, tau_s=int(result.parameter) - 1, k_min=4, k_max=8
            ).detect(toy_dataset, toy_ranking)
            assert below.result.max_groups_per_k() > 4 or result.parameter == 1

    def test_proportional_bound_supported(self, synthetic_small, synthetic_small_ranking):
        result = suggest_size_threshold(
            synthetic_small,
            synthetic_small_ranking,
            ProportionalBoundSpec(alpha=0.9),
            k_min=5,
            k_max=20,
            target_max_groups=5,
        )
        assert result.max_groups_per_k <= 5

    def test_infeasible_target_rejected(self, toy_dataset, toy_ranking):
        with pytest.raises(DetectionError):
            suggest_size_threshold(
                toy_dataset, toy_ranking, GlobalBoundSpec(lower_bounds=16),
                k_min=4, k_max=6, target_max_groups=0, tau_s_range=(1, 2),
            )
        with pytest.raises(DetectionError):
            suggest_size_threshold(
                toy_dataset, toy_ranking, GlobalBoundSpec(lower_bounds=2),
                k_min=4, k_max=6, tau_s_range=(5, 2),
            )
