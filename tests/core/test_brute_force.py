"""Tests for the brute-force reference implementation."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec
from repro.core.brute_force import brute_force_detection, enumerate_patterns
from repro.core.pattern import EMPTY_PATTERN, Pattern
from repro.core.pattern_graph import PatternCounter
from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import DetectionError
from repro.ranking.base import PrecomputedRanker


class TestEnumeratePatterns:
    def test_count_matches_schema_formula(self, toy_dataset):
        patterns = list(enumerate_patterns(toy_dataset))
        assert len(patterns) == toy_dataset.schema.total_patterns()
        assert len(set(patterns)) == len(patterns)
        assert EMPTY_PATTERN not in patterns

    def test_include_empty(self, toy_dataset):
        patterns = list(enumerate_patterns(toy_dataset, include_empty=True))
        assert EMPTY_PATTERN in patterns
        assert len(patterns) == toy_dataset.schema.total_patterns() + 1

    def test_specific_pattern_present(self, toy_dataset):
        patterns = set(enumerate_patterns(toy_dataset))
        assert Pattern({"Gender": "F", "School": "GP", "Address": "U", "Failures": 0}) in patterns


class TestBruteForceDetection:
    def test_limit_guard(self):
        spec = SyntheticSpec(n_rows=30, cardinalities=[4] * 10, seed=0)
        dataset = synthetic_dataset(spec)
        ranking = PrecomputedRanker(score_column="score").rank(dataset)
        counter = PatternCounter(dataset, ranking)
        with pytest.raises(DetectionError):
            brute_force_detection(
                dataset, counter, GlobalBoundSpec(lower_bounds=2), 2, 5, 6, pattern_limit=1000
            )

    def test_results_are_most_general_and_violating(self, toy_dataset, toy_ranking):
        bound = GlobalBoundSpec(lower_bounds=2)
        counter = PatternCounter(toy_dataset, toy_ranking)
        result = brute_force_detection(toy_dataset, counter, bound, tau_s=4, k_min=4, k_max=6)
        for k in result:
            groups = result.groups_at(k)
            for pattern in groups:
                assert counter.size(pattern) >= 4
                assert counter.top_k_count(pattern, k) < 2
                # No proper subset with adequate size also violates the bound.
                for other in groups:
                    if other != pattern:
                        assert not other.is_proper_subset_of(pattern)

    def test_single_attribute_dataset(self):
        dataset = Dataset.from_columns(
            {"color": ["r", "r", "g", "g", "b", "b"]},
            numeric={"score": [6.0, 5.0, 4.0, 3.0, 2.0, 1.0]},
        )
        ranking = PrecomputedRanker(score_column="score").rank(dataset)
        counter = PatternCounter(dataset, ranking)
        result = brute_force_detection(
            dataset, counter, GlobalBoundSpec(lower_bounds=1), tau_s=2, k_min=2, k_max=4
        )
        # In the top-2 only color=r appears, so g and b are under-represented.
        assert result.groups_at(2) == frozenset({Pattern({"color": "g"}), Pattern({"color": "b"})})
        assert result.groups_at(4) == frozenset({Pattern({"color": "b"})})
