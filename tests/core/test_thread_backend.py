"""Tests for the thread-sharded search backend (``backend="thread"``).

The contract mirrors the process executor's: bit-identical results for every
algorithm at ``workers=2`` — including planner-served ``run_many`` batches and
frontier extension through the session result cache — plus the thread-specific
guarantees: zero shared-memory publications and zero process spawns (the whole
point of the backend), ``backend="auto"`` routing by dataset size, cooperative
``query_deadline`` enforcement that leaves the executor healthy, and the usual
lifecycle rules (idempotent close, closed executor rejects searches).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec, step_lower_bounds
from repro.core.engine import parallel as parallel_module
from repro.core.engine import shared as shared_module
from repro.core.engine import threads as threads_module
from repro.core.engine.naive import NaiveCounter
from repro.core.engine.parallel import ExecutionConfig
from repro.core.engine.threads import (
    ThreadedSearchExecutor,
    create_search_executor,
    resolve_backend,
)
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.iter_td import IterTDDetector
from repro.core.pattern_graph import PatternCounter
from repro.core.prop_bounds import PropBoundsDetector
from repro.core.session import AuditSession, DetectionQuery, detect_biased_groups
from repro.core.stats import SearchStats
from repro.core.top_down import top_down_search
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import DetectionError, QueryTimeoutError
from repro.ranking.base import PrecomputedRanker

STEP = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0, 30: 6.0}))
PROP = ProportionalBoundSpec(alpha=0.9)

THREADED = ExecutionConfig(workers=2, backend="thread")


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float = 1.0):
    rng = np.random.default_rng(seed)
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist(),
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


# -- backend resolution ---------------------------------------------------------------
class TestBackendResolution:
    def test_explicit_backends_pass_through(self):
        dataset, ranking = _instance(201, 40, [2, 2])
        counter = PatternCounter(dataset, ranking)
        assert resolve_backend(ExecutionConfig(backend="thread"), counter) == "thread"
        assert resolve_backend(ExecutionConfig(backend="process"), counter) == "process"

    def test_auto_picks_threads_below_size_threshold(self, monkeypatch):
        dataset, ranking = _instance(202, 60, [2, 3])
        counter = PatternCounter(dataset, ranking)
        auto = ExecutionConfig(backend="auto")
        assert counter.engine.ranked_codes.nbytes < threads_module.THREAD_BACKEND_MAX_BYTES
        assert resolve_backend(auto, counter) == "thread"
        # Shrink the threshold below this dataset: auto must fall to processes.
        monkeypatch.setattr(threads_module, "THREAD_BACKEND_MAX_BYTES", 0)
        assert resolve_backend(auto, counter) == "process"

    def test_auto_on_non_engine_counter_stays_process(self):
        dataset, ranking = _instance(203, 40, [2, 2])
        naive = NaiveCounter(dataset, ranking)
        assert resolve_backend(ExecutionConfig(backend="auto"), naive) == "process"

    def test_create_returns_none_for_serial_conditions(self):
        dataset, ranking = _instance(204, 40, [2, 2])
        counter = PatternCounter(dataset, ranking)
        assert create_search_executor(counter, ExecutionConfig(workers=1, backend="thread")) is None
        naive = NaiveCounter(dataset, ranking)
        assert create_search_executor(naive, THREADED) is None

    def test_create_builds_thread_executor(self):
        dataset, ranking = _instance(205, 40, [2, 2])
        counter = PatternCounter(dataset, ranking)
        with create_search_executor(counter, THREADED) as executor:
            assert isinstance(executor, ThreadedSearchExecutor)
            assert executor.backend == "thread"
            assert executor.workers == 2
        # Auto routes small datasets to the same class.
        executor = create_search_executor(counter, ExecutionConfig(workers=2, backend="auto"))
        try:
            assert isinstance(executor, ThreadedSearchExecutor)
        finally:
            executor.close()


# -- direct executor parity -----------------------------------------------------------
class TestThreadedExecutorDirect:
    def test_full_state_matches_serial(self):
        dataset, ranking = _instance(211, 70, [2, 3, 2])
        counter = PatternCounter(dataset, ranking)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        reference = top_down_search(counter, bound, 25, 3, SearchStats())
        with ThreadedSearchExecutor(PatternCounter(dataset, ranking), THREADED) as executor:
            state = executor.search(bound, 25, 3, SearchStats())
            assert state.below == reference.below
            assert state.expanded == reference.expanded
            assert state.sizes == reference.sizes

    def test_k_sweep_preserves_most_general(self):
        dataset, ranking = _instance(212, 70, [2, 3, 2])
        counter = PatternCounter(dataset, ranking)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        with ThreadedSearchExecutor(PatternCounter(dataset, ranking), THREADED) as executor:
            for k in (5, 20, 40):
                reference = top_down_search(counter, bound, k, 3, SearchStats())
                minimal = executor.search(bound, k, 3, SearchStats(), classification=False)
                assert minimal.most_general() == reference.most_general()

    def test_stats_record_sharding_and_worker_engine_work(self):
        dataset, ranking = _instance(213, 70, [2, 3, 2])
        stats = SearchStats()
        with ThreadedSearchExecutor(PatternCounter(dataset, ranking), THREADED) as executor:
            executor.search(GlobalBoundSpec(lower_bounds=2.0), 25, 2, stats)
        assert stats.extra.get("parallel_searches") == 1
        assert stats.extra.get("parallel_shards", 0) >= 1
        # Shard engines did real counting, surfaced as worker_* deltas.
        assert any(name.startswith("worker_") for name in stats.extra)

    def test_deadline_raises_timeout_and_executor_stays_healthy(self):
        dataset, ranking = _instance(214, 80, [2, 3, 2, 2])
        counter = PatternCounter(dataset, ranking)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        with ThreadedSearchExecutor(PatternCounter(dataset, ranking), THREADED) as executor:
            stats = SearchStats()
            with pytest.raises(QueryTimeoutError):
                executor.search(bound, 40, 2, stats, deadline=time.monotonic() - 1.0)
            assert stats.query_deadline_exceeded == 1
            assert executor.healthy
            # The aborted query poisons nothing: the next search is exact.
            reference = top_down_search(counter, bound, 40, 2, SearchStats())
            state = executor.search(bound, 40, 2, SearchStats())
            assert state.below == reference.below
            assert state.expanded == reference.expanded

    def test_closed_executor_rejects_searches(self):
        dataset, ranking = _instance(215, 40, [2, 2])
        executor = ThreadedSearchExecutor(PatternCounter(dataset, ranking), THREADED)
        executor.close()
        executor.close()  # idempotent
        assert executor.closed and not executor.healthy
        with pytest.raises(DetectionError):
            executor.search(GlobalBoundSpec(lower_bounds=2.0), 5, 2, SearchStats())


# -- detector-level parity ------------------------------------------------------------
PARITY_INSTANCES = [
    (221, 64, [2, 3, 2], 0.8),
    (222, 90, [3, 2, 2, 2], 1.2),
]


@pytest.mark.parametrize("seed,n_rows,cardinalities,skew", PARITY_INSTANCES)
class TestThreadParity:
    """backend="thread" must be bit-identical to serial for every detector."""

    def _compare(self, detector_class, bound, dataset, ranking, n_rows):
        tau_s = max(2, n_rows // 12)
        serial = detector_class(
            bound=bound, tau_s=tau_s, k_min=2, k_max=n_rows - 1
        ).detect(dataset, ranking)
        threaded = detector_class(
            bound=bound, tau_s=tau_s, k_min=2, k_max=n_rows - 1, execution=THREADED
        ).detect(dataset, ranking)
        assert threaded.result == serial.result
        # Shards partition the tree; they never re-do or skip work.
        assert threaded.stats.nodes_evaluated == serial.stats.nodes_evaluated
        assert threaded.stats.nodes_generated == serial.stats.nodes_generated
        assert threaded.stats.extra.get("parallel_searches", 0) > 0
        assert "parallel_fallback" not in threaded.stats.extra

    def test_iter_td(self, seed, n_rows, cardinalities, skew):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        self._compare(IterTDDetector, STEP, dataset, ranking, n_rows)

    def test_global_bounds(self, seed, n_rows, cardinalities, skew):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        self._compare(GlobalBoundsDetector, STEP, dataset, ranking, n_rows)

    def test_prop_bounds(self, seed, n_rows, cardinalities, skew):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        self._compare(PropBoundsDetector, PROP, dataset, ranking, n_rows)


# -- session: planner-served batches and frontier extension ---------------------------
class TestThreadSession:
    def _queries(self, n_rows: int) -> list[DetectionQuery]:
        k_max = n_rows - 1
        return [
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, k_max),
            DetectionQuery(PROP, 2, 2, k_max),
            DetectionQuery(STEP, 2, 2, k_max, "iter_td"),
            DetectionQuery(STEP, 2, 2, k_max, "global_bounds"),
            DetectionQuery(PROP, 3, 5, k_max, "prop_bounds"),
            DetectionQuery(STEP, 3, 2, k_max, "iter_td"),
        ]

    def test_run_many_bit_identical_with_one_pool_and_zero_ipc(self):
        dataset, ranking = _instance(231, 64, [2, 3, 2], 0.8)
        queries = self._queries(64)
        with AuditSession(dataset, ranking) as serial_session:
            expected = serial_session.run_many(queries)
        with AuditSession(dataset, ranking, execution=THREADED) as session:
            reports = session.run_many(queries)
        assert [report.result for report in reports] == [
            report.result for report in expected
        ]
        totals = SearchStats()
        for report in reports:
            totals.absorb(report.stats)
        # One thread pool for the whole batch; never a process or shm segment.
        assert totals.extra.get("thread_pool_spawns") == 1
        assert totals.extra.get("shm_publishes", 0) == 0
        assert totals.extra.get("pool_spawns", 0) == 0

    def test_thread_backend_never_touches_process_machinery(self, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - failing is the test
            raise AssertionError("process machinery touched by the thread backend")

        monkeypatch.setattr(shared_module.SharedDatasetView, "publish", forbidden)
        monkeypatch.setattr(parallel_module.ParallelSearchExecutor, "__init__", forbidden)
        dataset, ranking = _instance(232, 60, [2, 3])
        report = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=20,
            execution=THREADED,
        ).detect(dataset, ranking)
        assert report.stats.extra.get("parallel_searches", 0) > 0

    @pytest.mark.parametrize(
        "algorithm,bound",
        [("iter_td", STEP), ("global_bounds", STEP), ("prop_bounds", PROP)],
    )
    def test_frontier_extension_bit_identical(self, algorithm, bound):
        dataset, ranking = _instance(233, 64, [2, 3, 2], 0.9)
        prefix = DetectionQuery(bound, 2, 2, 30, algorithm)
        overlapping = DetectionQuery(bound, 2, 5, 55, algorithm)
        with AuditSession(dataset, ranking, execution=THREADED) as session:
            session.run(prefix)
            extended = session.run(overlapping)
        cold = detect_biased_groups(
            dataset, ranking, bound, 2, 5, 55, algorithm=algorithm
        )
        assert extended.result == cold.result
        assert extended.stats.result_cache_partial_hits == 1
        assert extended.stats.extended_k_values == 25

    def test_session_deadline_surfaces_timeout_and_recovers(self):
        dataset, ranking = _instance(234, 80, [2, 3, 2, 2], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 79)
        with AuditSession(dataset, ranking, execution=THREADED) as session:
            with pytest.raises(QueryTimeoutError):
                session.run(query, query_deadline=1e-9)
            # The session (and its thread pool) keeps serving afterwards.
            report = session.run(query)
        cold = detect_biased_groups(
            dataset, ranking, query.bound, 2, 2, 79,
            algorithm=query.resolved_algorithm(),
        )
        assert report.result == cold.result
