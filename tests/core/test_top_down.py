"""Tests for repro.core.top_down (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.pattern import Pattern
from repro.core.stats import SearchStats
from repro.core.top_down import top_down_search


class TestGlobalBoundSearch:
    def test_example_2_4_school_constraint(self, toy_counter):
        """Example 2.4: with L_5 = 2, {School=GP} has only one top-5 tuple."""
        state = top_down_search(toy_counter, GlobalBoundSpec(lower_bounds=2), k=5, tau_s=4)
        assert Pattern({"School": "GP"}) in state.below
        assert state.below[Pattern({"School": "GP"})] == 1
        assert Pattern({"School": "MS"}) in state.expanded

    def test_example_4_6_result_and_frontier(self, toy_counter):
        """Example 4.6 (k=4): {Address=U} and {Failures=1} are most general results,
        while their specialisations end up on the below frontier with an ancestor in
        the result (the paper's DRes)."""
        state = top_down_search(toy_counter, GlobalBoundSpec(lower_bounds=2), k=4, tau_s=4)
        result = state.most_general()
        assert Pattern({"Address": "U"}) in result
        assert Pattern({"Failures": 1}) in result
        # The DRes patterns listed in the paper were reached and are below the bound
        # but are not most general.
        for dres_pattern in (
            Pattern({"Gender": "F", "Address": "U"}),
            Pattern({"Gender": "M", "Address": "U"}),
            Pattern({"Gender": "F", "Failures": 1}),
            Pattern({"Address": "R", "Failures": 1}),
        ):
            assert dres_pattern in state.below
            assert dres_pattern not in result

    def test_size_threshold_prunes(self, toy_counter):
        state = top_down_search(toy_counter, GlobalBoundSpec(lower_bounds=2), k=4, tau_s=9)
        # Only patterns with at least 9 of the 16 tuples survive; every single-value
        # pattern has size 8 or less except Failures=1 (size 8 as well) -> all pruned.
        assert not state.below and not state.expanded

    def test_below_and_expanded_partition_by_bound(self, toy_counter):
        bound = GlobalBoundSpec(lower_bounds=3)
        state = top_down_search(toy_counter, bound, k=6, tau_s=4)
        for pattern, count in state.below.items():
            assert count < 3
            assert toy_counter.top_k_count(pattern, 6) == count
        for pattern, count in state.expanded.items():
            assert count >= 3
            assert toy_counter.top_k_count(pattern, 6) == count

    def test_stats_are_recorded(self, toy_counter):
        stats = SearchStats()
        top_down_search(toy_counter, GlobalBoundSpec(lower_bounds=2), k=4, tau_s=4, stats=stats)
        assert stats.full_searches == 1
        assert stats.nodes_generated >= stats.nodes_evaluated > 0
        assert stats.size_computations >= stats.nodes_evaluated


class TestProportionalBoundSearch:
    def test_example_4_9_result_at_k4(self, toy_counter):
        """Example 4.9: tau_s=5, alpha=0.9, k=4 -> {School=GP}, {Address=U}, {Failures=1}."""
        state = top_down_search(toy_counter, ProportionalBoundSpec(alpha=0.9), k=4, tau_s=5)
        assert state.most_general() == frozenset(
            {Pattern({"School": "GP"}), Pattern({"Address": "U"}), Pattern({"Failures": 1})}
        )

    def test_sizes_cached_for_visited_patterns(self, toy_counter):
        state = top_down_search(toy_counter, ProportionalBoundSpec(alpha=0.9), k=4, tau_s=5)
        for pattern in list(state.below) + list(state.expanded):
            assert state.sizes[pattern] == toy_counter.size(pattern)
            assert state.sizes[pattern] >= 5


class TestSearchState:
    def test_is_visited(self, toy_counter):
        state = top_down_search(toy_counter, GlobalBoundSpec(lower_bounds=2), k=4, tau_s=4)
        assert state.is_visited(Pattern({"Address": "U"}))
        assert not state.is_visited(Pattern({"Address": "U", "Gender": "F", "School": "GP"}))
