"""Unit tests for the vectorized counting engine building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine.blocks import EngineBlock
from repro.core.engine.cache import LRUCache
from repro.core.engine.counting import CountingEngine
from repro.core.engine.masks import DenseMatch, SparseMatch, make_match
from repro.core.engine.naive import NaiveCounter
from repro.core.pattern import EMPTY_PATTERN, Pattern
from repro.core.result_set import minimal_patterns
from repro.data.generators.toy import students_toy
from repro.ranking.workloads import toy_ranker


@pytest.fixture()
def toy_engine():
    dataset = students_toy()
    ranking = toy_ranker().rank(dataset)
    return dataset, ranking, CountingEngine(dataset, ranking)


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache: LRUCache[str, int] = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_does_not_stop_caching_when_full(self):
        """Unlike the seed's mask cache, new entries keep landing after the cap."""
        cache: LRUCache[int, int] = LRUCache(3)
        for index in range(10):
            cache.put(index, index)
        assert len(cache) == 3
        assert set(cache) == {7, 8, 9}
        assert cache.evictions == 7

    def test_peek_does_not_touch_recency_or_counters(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)  # "a" was not refreshed by peek, so it is evicted
        assert "a" not in cache

    def test_zero_capacity_never_stores(self):
        cache: LRUCache[str, int] = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0

    def test_zero_capacity_counts_misses_but_never_evicts(self):
        cache: LRUCache[str, int] = LRUCache(0)
        for _ in range(3):
            cache.put("a", 1)
            assert cache.get("a") is None
        assert cache.misses == 3
        assert cache.hits == 0
        assert cache.evictions == 0
        assert "a" not in cache

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_reput_updates_value_and_refreshes_recency(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update in place; must not evict, must refresh "a"
        assert cache.evictions == 0
        cache.put("c", 3)  # now "b" is the LRU entry
        assert cache.peek("a") == 10
        assert "b" not in cache
        assert cache.evictions == 1

    def test_eviction_order_under_interleaved_reaccess(self):
        cache: LRUCache[int, int] = LRUCache(3)
        for key in (1, 2, 3):
            cache.put(key, key)
        cache.get(1)
        cache.get(2)  # recency now 3 < 1 < 2
        cache.put(4, 4)
        assert 3 not in cache  # 3 was the least recently used entry
        cache.get(1)  # recency now 2 < 4 < 1
        cache.put(5, 5)
        assert 2 not in cache
        assert set(cache) == {4, 1, 5}

    def test_eviction_counters_reach_search_stats(self):
        """Engine evictions under a tiny cache must surface on the run's stats."""
        from repro.core.bounds import GlobalBoundSpec
        from repro.core.iter_td import IterTDDetector
        from repro.data.synthetic import SyntheticSpec, synthetic_dataset
        from repro.ranking.base import PrecomputedRanker

        spec = SyntheticSpec(
            n_rows=60, cardinalities=[2, 3, 2], score_weights=[1.0, -0.5, 0.25],
            noise=0.3, seed=8,
        )
        dataset = synthetic_dataset(spec)
        ranking = PrecomputedRanker(score_column="score").rank(dataset)
        from repro.core.pattern_graph import PatternCounter

        counter = PatternCounter(dataset, ranking, max_cached_masks=3, max_cached_blocks=3)
        report = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=30
        ).detect(dataset, ranking, counter=counter)
        assert report.stats.cache_evictions > 0
        assert report.stats.cache_evictions == (
            counter.engine._matches.evictions + counter.engine._blocks.evictions
        )

    def test_clear_keeps_counters(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestMatchRepresentations:
    def test_make_match_picks_representation_by_selectivity(self):
        dense = make_match(np.arange(50, dtype=np.int32), 100, sparse_threshold=0.25)
        sparse = make_match(np.arange(10, dtype=np.int32), 100, sparse_threshold=0.25)
        assert isinstance(dense, DenseMatch) and dense.is_dense
        assert isinstance(sparse, SparseMatch) and not sparse.is_dense

    @pytest.mark.parametrize("positions", [[], [0], [3, 7, 9], list(range(20))])
    def test_dense_and_sparse_agree(self, positions):
        n_rows = 20
        positions = np.asarray(positions, dtype=np.int32)
        dense = make_match(positions, n_rows, sparse_threshold=0.0)
        sparse = make_match(positions, n_rows, sparse_threshold=2.0)
        assert isinstance(dense, DenseMatch)
        assert isinstance(sparse, SparseMatch)
        assert dense.size == sparse.size == positions.size
        for k in range(n_rows + 1):
            assert dense.top_k_count(k) == sparse.top_k_count(k)
        ks = np.arange(n_rows + 1)
        assert np.array_equal(dense.top_k_counts(ks), sparse.top_k_counts(ks))
        for position in range(n_rows):
            assert dense.contains_position(position) == sparse.contains_position(position)
        assert np.array_equal(dense.positions(), sparse.positions())

    def test_sparse_boolean_mask_round_trip(self):
        sparse = SparseMatch(np.asarray([1, 4, 5], dtype=np.int32))
        mask = sparse.boolean_mask(8)
        assert mask.tolist() == [False, True, False, False, True, True, False, False]


class TestCSRBlock:
    def test_qualifying_skips_small_children(self, toy_engine):
        _, _, engine = toy_engine
        block = engine.child_block(EMPTY_PATTERN, 0, k=5)
        survivors = list(block.qualifying(tau_s=8))
        assert {pattern.describe() for pattern, _, _ in survivors} == {"Gender=F", "Gender=M"}
        assert all(size >= 8 for _, size, _ in survivors)
        assert list(block.qualifying(tau_s=9)) == []

    def test_cached_block_counts_match_fresh_counts(self, toy_engine):
        _, _, engine = toy_engine
        fresh = engine.child_block(EMPTY_PATTERN, 1, k=5)
        cached = engine.child_block(EMPTY_PATTERN, 1, k=7)  # same block, different k
        assert isinstance(cached, EngineBlock)
        assert cached.entry is fresh.entry  # served from the block cache
        for index in range(fresh.n_children):
            assert fresh.count_for(index) == fresh.positions_for(index).searchsorted(5)
            assert cached.count_for(index) == cached.positions_for(index).searchsorted(7)
        assert engine.block_reuses == 1


class TestCountingEngine:
    def test_counters_move(self, toy_engine):
        _, _, engine = toy_engine
        list(engine.child_blocks(EMPTY_PATTERN, k=4))
        snapshot = engine.snapshot()
        assert snapshot["batch_evaluations"] == 4  # one per attribute
        assert snapshot["cache_misses"] > 0

    def test_row_satisfies_matches_mask(self, toy_engine):
        dataset, _, engine = toy_engine
        pattern = Pattern({"Gender": "F", "School": "GP"})
        mask = engine.boolean_mask(pattern)
        for rank in range(1, dataset.n_rows + 1):
            assert engine.row_satisfies(rank, pattern) == bool(mask[rank - 1])

    def test_eviction_does_not_change_answers(self):
        dataset = students_toy()
        ranking = toy_ranker().rank(dataset)
        tiny = CountingEngine(dataset, ranking, max_cached_patterns=2, max_cached_blocks=2)
        reference = NaiveCounter(dataset, ranking)
        patterns = [
            Pattern({"Gender": "F"}),
            Pattern({"School": "GP"}),
            Pattern({"Gender": "F", "School": "GP"}),
            Pattern({"Address": "U", "Failures": 1}),
            Pattern({"Gender": "M", "Address": "R"}),
        ]
        for _ in range(2):  # second pass exercises recomputation after eviction
            for pattern in patterns:
                assert tiny.size(pattern) == reference.size(pattern)
                for k in (1, 5, dataset.n_rows):
                    assert tiny.top_k_count(pattern, k) == reference.top_k_count(pattern, k)
        assert tiny.snapshot()["cache_evictions"] > 0

    def test_mismatched_dataset_rejected(self, toy_engine):
        from repro.data.dataset import Dataset
        from repro.ranking.base import PrecomputedRanker

        dataset, _, _ = toy_engine
        other = Dataset.from_columns({"x": ["a", "b"]}, numeric={"s": [1.0, 2.0]})
        other_ranking = PrecomputedRanker(score_column="s").rank(other)
        with pytest.raises(ValueError):
            CountingEngine(dataset, other_ranking)


class TestMinimalPatternsGrouping:
    def _reference(self, patterns):
        accepted = []
        for pattern in sorted(set(patterns), key=len):
            if not any(member.is_subset_of(pattern) for member in accepted):
                accepted.append(pattern)
        return frozenset(accepted)

    def test_randomized_equivalence_with_pairwise_reference(self):
        rng = np.random.default_rng(7)
        names = ["A", "B", "C", "D", "E"]
        for _ in range(25):
            patterns = []
            for _ in range(rng.integers(0, 40)):
                width = int(rng.integers(1, len(names) + 1))
                chosen = rng.choice(len(names), size=width, replace=False)
                patterns.append(
                    Pattern({names[i]: int(rng.integers(0, 3)) for i in chosen})
                )
            assert minimal_patterns(patterns) == self._reference(patterns)

    def test_empty_pattern_subsumes_everything(self):
        patterns = [EMPTY_PATTERN, Pattern({"A": 1}), Pattern({"A": 1, "B": 2})]
        assert minimal_patterns(patterns) == frozenset({EMPTY_PATTERN})

    def test_equal_length_antichain_kept_whole(self):
        patterns = [Pattern({"A": 1}), Pattern({"A": 2}), Pattern({"B": 1})]
        assert minimal_patterns(patterns) == frozenset(patterns)
