"""Tests for the parallel sharded search executor and its building blocks.

Covers the merge primitives (``SearchState.merge``, ``SearchStats.absorb/merge``),
the shared-memory dataset view, the weight-balanced shard partitioning, the
``ExecutionConfig`` plumbing through the public detector API, the serial fallback
guards (no pool, no shared memory with ``workers=1``; graceful degradation on
platforms without shared memory), and — most importantly — bit-identical parity of
the parallel executor against the serial path for all three detectors on
randomized instances.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec, step_lower_bounds
from repro.core.engine import parallel as parallel_module
from repro.core.engine import shared as shared_module
from repro.core.engine.parallel import ExecutionConfig, create_parallel_executor
from repro.core.engine.shared import SharedDatasetView
from repro.core.engine.sharding import estimate_subtree_weight, partition_weighted
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.iter_td import IterTDDetector
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternCounter
from repro.core.prop_bounds import PropBoundsDetector
from repro.core.stats import SearchStats
from repro.core.top_down import SearchState, top_down_search
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import DetectionError
from repro.ranking.base import PrecomputedRanker


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float = 1.0):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=weights,
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


# -- SearchState.merge ---------------------------------------------------------------
class TestSearchStateMerge:
    def _random_state(self, rng) -> SearchState:
        state = SearchState()
        for index in range(int(rng.integers(0, 30))):
            pattern = Pattern({f"A{int(rng.integers(1, 5))}": int(rng.integers(0, 3))})
            bucket = [state.below, state.expanded][int(rng.integers(0, 2))]
            bucket[pattern] = index
            state.sizes[pattern] = index + 1
        return state

    def test_merge_of_partition_reproduces_serial_state(self):
        """Splitting a real search state arbitrarily and merging must round-trip."""
        dataset, ranking = _instance(5, 80, [2, 3, 2])
        counter = PatternCounter(dataset, ranking)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        reference = top_down_search(counter, bound, 20, 2, SearchStats())
        rng = np.random.default_rng(11)
        parts = [SearchState() for _ in range(3)]
        for mapping_name in ("below", "expanded", "sizes"):
            for pattern, value in getattr(reference, mapping_name).items():
                part = parts[int(rng.integers(0, 3))]
                getattr(part, mapping_name)[pattern] = value
        merged = SearchState()
        for part in parts:
            assert merged.merge(part) is merged
        assert merged.below == reference.below
        assert merged.expanded == reference.expanded
        assert merged.sizes == reference.sizes
        assert merged.most_general() == reference.most_general()

    def test_merge_overlap_last_wins(self):
        pattern = Pattern({"A1": 0})
        first = SearchState(below={pattern: 1}, sizes={pattern: 5})
        second = SearchState(below={pattern: 2}, sizes={pattern: 5})
        first.merge(second)
        assert first.below[pattern] == 2

    def test_randomized_merge_equals_dict_union(self):
        rng = np.random.default_rng(23)
        for _ in range(20):
            one, two = self._random_state(rng), self._random_state(rng)
            expected_below = {**one.below, **two.below}
            expected_expanded = {**one.expanded, **two.expanded}
            merged = one.merge(two)
            assert merged.below == expected_below
            assert merged.expanded == expected_expanded


# -- SearchStats merge/absorb --------------------------------------------------------
class TestSearchStatsMerge:
    def test_absorb_accumulates_in_place(self):
        first = SearchStats(nodes_evaluated=3, cache_hits=2, extra={"a": 1})
        second = SearchStats(nodes_evaluated=4, cache_hits=1, extra={"a": 2, "b": 5})
        result = first.absorb(second)
        assert result is first
        assert first.nodes_evaluated == 7
        assert first.cache_hits == 3
        assert first.extra == {"a": 3, "b": 5}

    def test_merge_leaves_operands_untouched(self):
        first = SearchStats(nodes_evaluated=3, extra={"a": 1})
        second = SearchStats(nodes_evaluated=4, extra={"a": 2})
        merged = first.merge(second)
        assert merged.nodes_evaluated == 7
        assert merged.extra == {"a": 3}
        assert first.nodes_evaluated == 3 and first.extra == {"a": 1}
        assert second.nodes_evaluated == 4 and second.extra == {"a": 2}

    def test_copy_is_independent(self):
        stats = SearchStats(extra={"a": 1})
        clone = stats.copy()
        clone.bump("a")
        assert stats.extra == {"a": 1}


# -- sharding ------------------------------------------------------------------------
class TestSharding:
    def test_partition_covers_every_index_exactly_once(self):
        weights = [7, 1, 9, 3, 3, 5, 2]
        shards = partition_weighted(weights, 3)
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(len(weights)))

    def test_partition_balances_better_than_worst_case(self):
        rng = np.random.default_rng(3)
        weights = [int(w) for w in rng.integers(1, 100, size=40)]
        shards = partition_weighted(weights, 4)
        loads = [sum(weights[i] for i in shard) for shard in shards]
        # LPT guarantee: makespan <= (4/3 - 1/3m) * OPT, and OPT >= total/m.
        assert max(loads) <= (4 / 3) * sum(weights) / 4 + max(weights)

    def test_partition_is_deterministic(self):
        weights = [4, 4, 2, 2, 1]
        assert partition_weighted(weights, 2) == partition_weighted(weights, 2)

    def test_more_shards_than_units_drops_empties(self):
        shards = partition_weighted([5, 1], 8)
        assert len(shards) == 2
        assert sorted(index for shard in shards for index in shard) == [0, 1]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition_weighted([1], 0)

    def test_subtree_weight_decreases_with_attribute_index(self):
        n_attributes = 6
        weights = [estimate_subtree_weight(100, index, n_attributes) for index in range(6)]
        assert weights == sorted(weights, reverse=True)
        # Leaf subtrees (last attribute) still get positive weight.
        assert weights[-1] == 1


# -- shared memory view --------------------------------------------------------------
class TestSharedDatasetView:
    def test_publish_attach_round_trip_zero_copy(self):
        dataset, ranking = _instance(9, 60, [2, 3])
        counter = PatternCounter(dataset, ranking)
        ranked = counter.engine.ranked_codes
        view = SharedDatasetView.publish(
            ranked, np.ascontiguousarray(ranking.order), dataset.schema
        )
        try:
            attached = view.handle().attach()
            try:
                assert np.array_equal(attached.ranked_codes, ranked)
                assert np.array_equal(attached.order, ranking.order)
                assert attached.ranked_codes.flags["F_CONTIGUOUS"]
                assert not attached.ranked_codes.flags["WRITEABLE"]
                assert attached.schema == dataset.schema
                assert not attached.is_owner
            finally:
                attached.close()
        finally:
            view.close()

    def test_handle_is_picklable(self):
        dataset, ranking = _instance(10, 40, [2, 2])
        counter = PatternCounter(dataset, ranking)
        view = SharedDatasetView.publish(
            counter.engine.ranked_codes, np.ascontiguousarray(ranking.order), dataset.schema
        )
        try:
            handle = pickle.loads(pickle.dumps(view.handle()))
            attached = handle.attach()
            try:
                assert np.array_equal(attached.ranked_codes, counter.engine.ranked_codes)
            finally:
                attached.close()
        finally:
            view.close()

    def test_publish_validates_shapes(self):
        dataset, ranking = _instance(12, 30, [2, 2])
        counter = PatternCounter(dataset, ranking)
        with pytest.raises(ValueError):
            SharedDatasetView.publish(
                counter.engine.ranked_codes, np.arange(7), dataset.schema
            )


# -- Pattern pickling across processes ----------------------------------------------
class TestPatternPickle:
    def test_reduce_rebuilds_through_reconstructor(self):
        pattern = Pattern({"b": 2, "a": 1})
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone == pattern
        assert hash(clone) == hash(pattern)
        assert {clone: 1}[pattern] == 1

    def test_empty_pattern_round_trips(self):
        from repro.core.pattern import EMPTY_PATTERN

        assert pickle.loads(pickle.dumps(EMPTY_PATTERN)) == EMPTY_PATTERN


# -- ExecutionConfig -----------------------------------------------------------------
class TestExecutionConfig:
    def test_defaults_document_engine_tunables(self):
        from repro.core.engine.counting import DEFAULT_CACHE_CAPACITY
        from repro.core.engine.masks import DEFAULT_SPARSE_THRESHOLD

        config = ExecutionConfig()
        assert config.workers == 1
        assert config.match_cache_capacity == DEFAULT_CACHE_CAPACITY
        assert config.sparse_threshold == DEFAULT_SPARSE_THRESHOLD
        assert config.block_cache_capacity is None

    def test_validation(self):
        with pytest.raises(DetectionError):
            ExecutionConfig(workers=-1)
        with pytest.raises(DetectionError):
            ExecutionConfig(match_cache_capacity=-1)
        with pytest.raises(DetectionError):
            ExecutionConfig(block_cache_capacity=-2)
        with pytest.raises(DetectionError):
            ExecutionConfig(sparse_threshold=-0.1)
        with pytest.raises(DetectionError):
            ExecutionConfig(start_method="thread")

    def test_workers_zero_resolves_to_available_cpus(self):
        import os

        affinity = getattr(os, "sched_getaffinity", None)
        expected = (
            max(1, len(affinity(0))) if affinity is not None else max(1, os.cpu_count() or 1)
        )
        assert ExecutionConfig(workers=0).resolved_workers() == expected
        assert ExecutionConfig(workers=3).resolved_workers() == 3

    def test_workers_zero_respects_affinity_mask(self, monkeypatch):
        """A container CPU mask narrower than cpu_count wins the resolution."""
        import os

        if getattr(os, "sched_getaffinity", None) is None:
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert ExecutionConfig(workers=0).resolved_workers() == 2

    def test_unknown_kernel_and_backend_rejected_typed(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExecutionConfig(kernel="fused")
        with pytest.raises(ConfigurationError):
            ExecutionConfig(backend="greenlet")
        # ConfigurationError stays inside the DetectionError taxonomy.
        with pytest.raises(DetectionError):
            ExecutionConfig(kernel="fused")
        # The valid values all construct.
        for kernel in ("auto", "numpy"):
            for backend in ("auto", "process", "thread"):
                assert ExecutionConfig(kernel=kernel, backend=backend).backend == backend

    def test_cache_capacity_reaches_engine(self, synthetic_small, synthetic_small_ranking):
        execution = ExecutionConfig(match_cache_capacity=4, block_cache_capacity=4)
        detector = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=30,
            execution=execution,
        )
        report = detector.detect(synthetic_small, synthetic_small_ranking)
        assert report.stats.cache_evictions > 0
        assert report._counter.cached_patterns <= 4

    def test_sparse_threshold_reaches_engine(self, synthetic_small, synthetic_small_ranking):
        # A threshold above 1.0 forces every cached match into sparse storage.
        execution = ExecutionConfig(sparse_threshold=1.1)
        detector = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=10,
            execution=execution,
        )
        report = detector.detect(synthetic_small, synthetic_small_ranking)
        assert report.stats.sparse_masks > 0
        assert report.stats.dense_masks == 0

    def test_facade_threads_execution_config(self, synthetic_small, synthetic_small_ranking):
        from repro.core import detect_biased_groups

        report = detect_biased_groups(
            synthetic_small, synthetic_small_ranking, GlobalBoundSpec(lower_bounds=2.0),
            tau_s=2, k_min=2, k_max=6,
            execution=ExecutionConfig(match_cache_capacity=123),
        )
        assert report.stats.nodes_evaluated > 0


# -- serial fallback guards ----------------------------------------------------------
class TestSerialFallback:
    def test_workers_1_never_touches_pool_or_shared_memory(self, monkeypatch):
        """The default path must not create a process or a shared segment."""

        def forbidden(*args, **kwargs):  # pragma: no cover - failing is the test
            raise AssertionError("parallel machinery touched on the serial path")

        monkeypatch.setattr(shared_module.SharedDatasetView, "publish", forbidden)
        monkeypatch.setattr(parallel_module.ParallelSearchExecutor, "__init__", forbidden)
        dataset, ranking = _instance(31, 60, [2, 3])
        report = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=10
        ).detect(dataset, ranking)
        assert report.result.total_reported() >= 0
        assert "parallel_fallback" not in report.stats.extra

    def test_falls_back_serially_when_shared_memory_unavailable(self, monkeypatch):
        def failing_publish(*args, **kwargs):
            raise OSError("no shared memory in this sandbox")

        monkeypatch.setattr(shared_module.SharedDatasetView, "publish", failing_publish)
        monkeypatch.setattr(
            parallel_module.SharedDatasetView, "publish", failing_publish
        )
        dataset, ranking = _instance(33, 60, [2, 3])
        serial = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=10
        ).detect(dataset, ranking)
        degraded = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=10,
            execution=ExecutionConfig(workers=4),
        ).detect(dataset, ranking)
        assert degraded.result == serial.result
        assert degraded.stats.extra.get("parallel_fallback") == 1

    def test_falls_back_serially_when_workers_cannot_start(self, monkeypatch):
        """Worker-side init failure (e.g. attach blocked) degrades to serial."""

        def failing_build(handle, config):
            raise OSError("attach blocked in this sandbox")

        # Forked workers inherit the patched module, so every worker reports
        # init_error, the startup handshake fails, and detect() must fall back.
        monkeypatch.setattr(parallel_module, "_build_worker_counter", failing_build)
        dataset, ranking = _instance(36, 60, [2, 3])
        serial = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=10
        ).detect(dataset, ranking)
        degraded = IterTDDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=10,
            execution=ExecutionConfig(workers=2, start_method="fork"),
        ).detect(dataset, ranking)
        assert degraded.result == serial.result
        assert degraded.stats.extra.get("parallel_fallback") == 1

    def test_falls_back_when_module_reports_no_shared_memory(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "shared_memory_available", lambda: False)
        dataset, ranking = _instance(34, 50, [2, 2])
        counter = PatternCounter(dataset, ranking)
        assert create_parallel_executor(counter, ExecutionConfig(workers=2)) is None

    def test_non_engine_counter_stays_serial(self):
        from repro.core.engine.naive import NaiveCounter

        dataset, ranking = _instance(35, 50, [2, 2])
        naive = NaiveCounter(dataset, ranking)
        assert create_parallel_executor(naive, ExecutionConfig(workers=2)) is None


# -- executor parity -----------------------------------------------------------------
PARITY_INSTANCES = [
    (41, 64, [2, 3, 2], 0.8),
    (57, 90, [3, 2, 2, 2], 1.2),
]


@pytest.mark.parametrize("seed,n_rows,cardinalities,skew", PARITY_INSTANCES)
@pytest.mark.parametrize("workers", [2, 3])
class TestParallelParity:
    """Parallel execution must be bit-identical to serial for every detector."""

    def _compare(self, detector_class, bound, dataset, ranking, workers, n_rows):
        tau_s = max(2, n_rows // 12)
        serial = detector_class(
            bound=bound, tau_s=tau_s, k_min=2, k_max=n_rows - 1
        ).detect(dataset, ranking)
        parallel = detector_class(
            bound=bound, tau_s=tau_s, k_min=2, k_max=n_rows - 1,
            execution=ExecutionConfig(workers=workers),
        ).detect(dataset, ranking)
        assert parallel.result == serial.result
        # The traversal counters must match the serial run exactly: the shards
        # partition the search tree, they do not re-do or skip work.
        assert parallel.stats.nodes_evaluated == serial.stats.nodes_evaluated
        assert parallel.stats.nodes_generated == serial.stats.nodes_generated
        assert "parallel_fallback" not in parallel.stats.extra
        assert parallel.stats.extra.get("parallel_searches", 0) > 0

    def test_iter_td(self, seed, n_rows, cardinalities, skew, workers):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        bound = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0, 30: 6.0}))
        self._compare(IterTDDetector, bound, dataset, ranking, workers, n_rows)

    def test_global_bounds(self, seed, n_rows, cardinalities, skew, workers):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        bound = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0, 30: 6.0}))
        self._compare(GlobalBoundsDetector, bound, dataset, ranking, workers, n_rows)

    def test_prop_bounds(self, seed, n_rows, cardinalities, skew, workers):
        dataset, ranking = _instance(seed, n_rows, cardinalities, skew)
        self._compare(
            PropBoundsDetector, ProportionalBoundSpec(alpha=0.9), dataset, ranking,
            workers, n_rows,
        )


class TestParallelExecutorDirect:
    def test_full_classification_state_matches_serial(self):
        dataset, ranking = _instance(71, 70, [2, 3, 2], 1.0)
        counter = PatternCounter(dataset, ranking)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        reference = top_down_search(counter, bound, 25, 3, SearchStats())
        executor = create_parallel_executor(
            PatternCounter(dataset, ranking), ExecutionConfig(workers=2)
        )
        assert executor is not None
        try:
            state = executor.search(bound, 25, 3, SearchStats())
            assert state.below == reference.below
            assert state.expanded == reference.expanded
            assert state.sizes == reference.sizes
        finally:
            executor.close()

    def test_sweep_fast_path_preserves_most_general(self):
        dataset, ranking = _instance(72, 70, [2, 3, 2], 1.0)
        counter = PatternCounter(dataset, ranking)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        executor = create_parallel_executor(
            PatternCounter(dataset, ranking), ExecutionConfig(workers=2)
        )
        assert executor is not None
        try:
            for k in (5, 20, 40):
                reference = top_down_search(counter, bound, k, 3, SearchStats())
                minimal_state = executor.search(
                    bound, k, 3, SearchStats(), classification=False
                )
                assert minimal_state.most_general() == reference.most_general()
        finally:
            executor.close()

    def test_spawn_start_method_parity(self):
        """Spawned workers re-import everything; catches pickling regressions."""
        dataset, ranking = _instance(73, 50, [2, 2], 1.0)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        serial = IterTDDetector(bound=bound, tau_s=2, k_min=2, k_max=20).detect(
            dataset, ranking
        )
        spawned = IterTDDetector(
            bound=bound, tau_s=2, k_min=2, k_max=20,
            execution=ExecutionConfig(workers=2, start_method="spawn"),
        ).detect(dataset, ranking)
        assert spawned.result == serial.result

    def test_stale_results_from_aborted_search_are_discarded(self):
        """A straggler result left queued by a failed search must not be merged."""
        dataset, ranking = _instance(75, 60, [2, 3], 1.0)
        counter = PatternCounter(dataset, ranking)
        bound = GlobalBoundSpec(lower_bounds=2.0)
        reference = top_down_search(counter, bound, 20, 2, SearchStats())
        executor = create_parallel_executor(
            PatternCounter(dataset, ranking), ExecutionConfig(workers=2)
        )
        assert executor is not None
        try:
            poison = Pattern({"A1": "poison"})
            stale_state = SearchState(below={poison: 99})
            # Epochs start after this value, so the message is from "an earlier
            # search" by construction — exactly what a shard failure leaves behind
            # (in worker 0's private result queue).
            executor._result_queues[0].put(
                ("ok", executor._epoch, 0, (stale_state, SearchStats(), {}))
            )
            state = executor.search(bound, 20, 2, SearchStats())
            assert poison not in state.below
            assert state.below == reference.below
            assert state.expanded == reference.expanded
        finally:
            executor.close()

    def test_closed_executor_rejects_searches(self):
        dataset, ranking = _instance(74, 40, [2, 2], 1.0)
        executor = create_parallel_executor(
            PatternCounter(dataset, ranking), ExecutionConfig(workers=2)
        )
        assert executor is not None
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(DetectionError):
            executor.search(GlobalBoundSpec(lower_bounds=2.0), 5, 2, SearchStats())
