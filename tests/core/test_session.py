"""Tests for the session-oriented repeated-query API (AuditSession / DetectionQuery).

The contract under test, in order of importance:

* session results are bit-identical to the one-shot ``detect_biased_groups`` path
  for all three algorithms, serial and parallel (``workers=2``, the spawn start
  method included);
* executor reuse: a mixed-bounds multi-query sweep through one session performs
  exactly one shared-memory publication and one worker-pool spawn, asserted both
  through the ``SearchStats`` lifecycle counters and by counting actual
  ``SharedDatasetView.publish`` / executor constructions;
* per-query stats isolation on the shared warm engine;
* lifecycle: lazy executor creation, idempotent close, context manager, serial
  reattach (with a rerun) after a worker death;
* the compatibility wrappers (``Detector.detect``, ``detect_biased_groups``)
  behave exactly as before.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec, step_lower_bounds
from repro.core.engine import parallel as parallel_module
from repro.core.engine import shared as shared_module
from repro.core.engine.parallel import ExecutionConfig, ParallelSearchExecutor
from repro.core.pattern_graph import PatternCounter
from repro.core.session import (
    DETECTOR_CLASSES,
    AuditSession,
    DetectionQuery,
    detect_biased_groups,
    run_queries,
)
from repro.core.upper_bounds import UpperBoundsDetector
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import DetectionError
from repro.ranking.base import PrecomputedRanker


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float = 1.0):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=weights,
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


def _mixed_queries(n_rows: int) -> list[DetectionQuery]:
    """A 10-query mixed-bounds sweep: both problems, all three algorithms, two tau_s."""
    k_max = n_rows - 1
    step = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0, 30: 6.0}))
    return [
        DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=k_max),
        DetectionQuery(ProportionalBoundSpec(alpha=0.9), tau_s=2, k_min=2, k_max=k_max),
        DetectionQuery(step, tau_s=2, k_min=2, k_max=k_max, algorithm="iter_td"),
        DetectionQuery(step, tau_s=2, k_min=2, k_max=k_max, algorithm="global_bounds"),
        DetectionQuery(ProportionalBoundSpec(alpha=0.7), tau_s=2, k_min=5, k_max=k_max),
        DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), tau_s=4, k_min=2, k_max=k_max),
        DetectionQuery(ProportionalBoundSpec(alpha=1.1), tau_s=4, k_min=2, k_max=k_max,
                       algorithm="prop_bounds"),
        DetectionQuery(step, tau_s=4, k_min=2, k_max=k_max, algorithm="iter_td"),
        DetectionQuery(GlobalBoundSpec(lower_bounds=1.0), tau_s=2, k_min=2, k_max=10),
        DetectionQuery(ProportionalBoundSpec(alpha=0.8), tau_s=2, k_min=10, k_max=k_max),
    ]


# -- DetectionQuery -------------------------------------------------------------------
class TestDetectionQuery:
    def test_auto_resolution_follows_bound_kind(self):
        global_query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 5)
        prop_query = DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 5)
        assert global_query.resolved_algorithm() == "global_bounds"
        assert prop_query.resolved_algorithm() == "prop_bounds"
        explicit = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 5, "iter_td")
        assert explicit.resolved_algorithm() == "iter_td"

    def test_build_detector_matches_registry(self):
        for name, detector_class in DETECTOR_CLASSES.items():
            # upper_bounds queries need an upper level; beta is its canonical form.
            beta = 4.0 if name == "upper_bounds" else None
            query = DetectionQuery(
                GlobalBoundSpec(lower_bounds=2.0), 2, 2, 5, name, beta=beta
            )
            detector = query.build_detector()
            assert isinstance(detector, detector_class)
            assert detector.parameters.tau_s == 2

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 5, "quantum")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DetectionError):
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), tau_s=0, k_min=2, k_max=5)
        with pytest.raises(DetectionError):
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=6, k_max=5)

    def test_is_frozen(self):
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 5)
        with pytest.raises(AttributeError):
            query.tau_s = 3


# -- parity with the one-shot path ----------------------------------------------------
EXECUTIONS = [
    pytest.param(None, id="serial"),
    pytest.param(ExecutionConfig(workers=2), id="workers2"),
    pytest.param(ExecutionConfig(workers=2, start_method="spawn"), id="workers2-spawn"),
]


@pytest.mark.parametrize("execution", EXECUTIONS)
class TestSessionParity:
    """Session results must be bit-identical to one-shot detect_biased_groups."""

    def test_all_algorithms_bit_identical(self, execution):
        dataset, ranking = _instance(101, 64, [2, 3, 2], 0.8)
        step = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0, 30: 6.0}))
        cases = [
            ("iter_td", step, 3),
            ("global_bounds", step, 3),
            ("prop_bounds", ProportionalBoundSpec(alpha=0.9), 3),
        ]
        with AuditSession(dataset, ranking, execution=execution) as session:
            for algorithm, bound, tau_s in cases:
                query = DetectionQuery(bound, tau_s, 2, 63, algorithm)
                warm = session.run(query)
                cold = detect_biased_groups(
                    dataset, ranking, bound, tau_s, 2, 63,
                    algorithm=algorithm, execution=execution,
                )
                assert warm.result == cold.result
                # The traversal counters must match too: a warm engine changes
                # where counts come from (caches), never how many nodes the
                # algorithm touches.
                assert warm.stats.nodes_evaluated == cold.stats.nodes_evaluated
                assert warm.stats.nodes_generated == cold.stats.nodes_generated
                assert warm.query is query
                assert warm.algorithm == cold.algorithm

    def test_run_many_matches_individual_runs(self, execution):
        dataset, ranking = _instance(103, 56, [2, 2, 3], 1.1)
        queries = _mixed_queries(56)[:4]
        with AuditSession(dataset, ranking, execution=execution) as session:
            batched = session.run_many(queries)
        assert [report.query for report in batched] == queries
        for query, report in zip(queries, batched):
            cold = detect_biased_groups(
                dataset, ranking, query.bound, query.tau_s, query.k_min, query.k_max,
                algorithm=query.algorithm,
            )
            assert report.result == cold.result


# -- executor / engine reuse ----------------------------------------------------------
class TestExecutorReuse:
    def test_ten_query_sweep_one_publish_one_spawn(self, monkeypatch):
        """The acceptance criterion: N parallel queries, one publish, one pool."""
        dataset, ranking = _instance(107, 72, [2, 3, 2], 1.0)
        queries = _mixed_queries(72)
        assert len(queries) == 10

        publishes = []
        real_publish = shared_module.SharedDatasetView.publish.__func__

        def counting_publish(cls, *args, **kwargs):
            publishes.append(1)
            return real_publish(cls, *args, **kwargs)

        monkeypatch.setattr(
            shared_module.SharedDatasetView, "publish", classmethod(counting_publish)
        )
        monkeypatch.setattr(
            parallel_module.SharedDatasetView, "publish", classmethod(counting_publish)
        )
        spawns = []
        real_init = ParallelSearchExecutor.__init__

        def counting_init(self, *args, **kwargs):
            spawns.append(1)
            return real_init(self, *args, **kwargs)

        monkeypatch.setattr(ParallelSearchExecutor, "__init__", counting_init)

        with AuditSession(
            dataset, ranking, execution=ExecutionConfig(workers=2)
        ) as session:
            reports = session.run_many(queries)

        assert len(reports) == 10
        # Actual lifecycle events: one shared-memory publication, one pool spawn.
        assert len(publishes) == 1
        assert len(spawns) == 1
        # The same numbers as seen through the stats counters (the first query
        # pays for the executor; every other query reuses it).
        assert sum(r.stats.extra.get("shm_publishes", 0) for r in reports) == 1
        assert sum(r.stats.extra.get("pool_spawns", 0) for r in reports) == 1
        assert all("parallel_fallback" not in r.stats.extra for r in reports)
        # The pool is genuinely exercised across the sweep (a query whose root
        # pass classifies everything below bound legitimately fans nothing out).
        assert sum(r.stats.extra.get("parallel_searches", 0) for r in reports) >= 8
        # And the per-query results match the cold path bit for bit.
        for query, report in zip(queries, reports):
            cold = detect_biased_groups(
                dataset, ranking, query.bound, query.tau_s, query.k_min, query.k_max,
                algorithm=query.algorithm,
            )
            assert report.result == cold.result

    def test_serial_session_shares_one_counter(self):
        """With result reuse disabled, a warm rerun answers from the block caches."""
        dataset, ranking = _instance(109, 60, [2, 3], 1.0)
        with AuditSession(dataset, ranking, result_cache_capacity=0) as session:
            first = session.run(
                DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
            )
            second = session.run(
                DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
            )
            assert first._counter is session.counter
            assert second._counter is session.counter
        # The warm rerun of the identical query answers from the block caches:
        # it cannot miss more often than it hits, nor more often than the cold run.
        assert second.stats.cache_misses < second.stats.cache_hits
        assert second.stats.cache_misses < first.stats.cache_misses

    def test_identical_rerun_is_a_result_cache_hit(self):
        """With the default session, a repeated query never reaches the engine."""
        dataset, ranking = _instance(109, 60, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        with AuditSession(dataset, ranking) as session:
            first = session.run(query)
            second = session.run(query)
        assert first.stats.result_cache_misses == 1
        assert second.stats.result_cache_hits == 1
        # A cache-served report performed no engine work at all.
        assert second.stats.full_searches == 0
        assert second.stats.batch_evaluations == 0
        assert second.stats.nodes_evaluated == 0
        assert second.result == first.result

    def test_per_query_stats_are_isolated(self):
        """Engine counters on a report reflect that query only, not the session."""
        dataset, ranking = _instance(110, 60, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        with AuditSession(dataset, ranking) as session:
            reports = [session.run(query) for _ in range(3)]
        cumulative = session.counter.stats_snapshot()
        summed = sum(report.stats.batch_evaluations for report in reports)
        assert cumulative["batch_evaluations"] == summed
        assert session.queries_run == 3

    def test_lazy_executor_not_created_for_serial_or_upper_bounds(self, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - failing is the test
            raise AssertionError("parallel machinery touched unexpectedly")

        monkeypatch.setattr(shared_module.SharedDatasetView, "publish", forbidden)
        monkeypatch.setattr(ParallelSearchExecutor, "__init__", forbidden)
        dataset, ranking = _instance(111, 50, [2, 2], 1.0)
        # Serial session: never touches the pool.
        with AuditSession(dataset, ranking) as session:
            session.run(DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 20))
        # Parallel session running only a non-search detector: stays lazy.
        with AuditSession(
            dataset, ranking, execution=ExecutionConfig(workers=2)
        ) as session:
            report = session.run_detector(UpperBoundsDetector(
                bound=GlobalBoundSpec(lower_bounds=1.0, upper_bounds=30.0),
                tau_s=2, k_min=5, k_max=5,
            ))
            assert report.algorithm == "UpperBounds"


# -- lifecycle ------------------------------------------------------------------------
class TestSessionLifecycle:
    def test_close_is_idempotent_and_blocks_queries(self):
        dataset, ranking = _instance(113, 40, [2, 2], 1.0)
        session = AuditSession(dataset, ranking)
        report = session.run(DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 10))
        session.close()
        session.close()
        assert session.closed
        with pytest.raises(DetectionError):
            session.run(DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 10))
        # Reports stay readable after close.
        assert report.detailed_groups(10) is not None

    def test_context_manager_closes_executor(self):
        dataset, ranking = _instance(114, 60, [2, 3], 1.0)
        with AuditSession(
            dataset, ranking, execution=ExecutionConfig(workers=2)
        ) as session:
            session.run(DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30))
            executor = session._executor
            assert executor is not None and executor.healthy
        assert session.closed
        assert executor.closed
        assert not any(process.is_alive() for process in executor._processes)

    def test_accepts_ranker_and_exposes_ranking(self):
        from repro.ranking.workloads import toy_ranker
        from repro.data.generators.toy import students_toy

        dataset = students_toy()
        with AuditSession(dataset, toy_ranker()) as session:
            assert session.ranking.dataset is dataset
            report = session.run(
                DetectionQuery(GlobalBoundSpec(lower_bounds=2), 4, 4, 5)
            )
            assert report.result.total_reported() > 0

    def test_counter_reuse_validation_uses_fingerprint(self):
        dataset, ranking = _instance(115, 50, [2, 2], 1.0)
        counter = PatternCounter(dataset, ranking)
        # An equal-but-distinct dataset object is accepted via the fingerprint.
        clone = type(dataset)(dataset.schema, dataset.codes.copy(),
                              {name: dataset.numeric_column(name)
                               for name in dataset.numeric_names})
        assert clone.fingerprint() == dataset.fingerprint()
        session = AuditSession(clone, ranking, counter=counter)
        assert session.counter is counter
        session.close()
        # A genuinely different dataset is rejected.
        other, other_ranking = _instance(116, 50, [2, 2], 1.0)
        assert other.fingerprint() != dataset.fingerprint()
        with pytest.raises(DetectionError):
            AuditSession(other, other_ranking, counter=counter)

    def test_run_queries_convenience(self):
        dataset, ranking = _instance(117, 40, [2, 2], 1.0)
        queries = _mixed_queries(40)[:3]
        reports = run_queries(dataset, ranking, queries)
        assert [report.query for report in reports] == queries


# -- the single-caller guard ----------------------------------------------------------
class TestSingleCallerGuard:
    def test_concurrent_use_raises_typed_error(self):
        """Sessions attribute per-query stats through warm-engine snapshot
        deltas, so two interleaved callers would silently corrupt each other's
        counters.  The guard turns that misuse into a typed error while the
        first caller's query completes untouched — and the session stays fully
        usable afterwards."""
        import threading

        from repro.exceptions import ConcurrentSessionUseError

        dataset, ranking = _instance(118, 48, [2, 2], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 20)
        reference = detect_biased_groups(
            dataset, ranking, query.effective_bound(), 2, 2, 20
        ).result
        with AuditSession(dataset, ranking, result_cache_capacity=0) as session:
            entered = threading.Event()
            proceed = threading.Event()
            original_execute = session._execute

            def blocking_execute(*args, **kwargs):
                # Deterministic overlap: signal the main thread we are inside
                # the guarded section, then wait for it to finish its attempt.
                entered.set()
                assert proceed.wait(timeout=30), "main thread never released us"
                return original_execute(*args, **kwargs)

            session._execute = blocking_execute
            outcome: list[object] = []
            worker = threading.Thread(
                target=lambda: outcome.append(session.run(query))
            )
            worker.start()
            try:
                assert entered.wait(timeout=30), "worker never entered the session"
                with pytest.raises(ConcurrentSessionUseError, match="single-caller"):
                    session.run(query)
                with pytest.raises(ConcurrentSessionUseError):
                    session.run_many([query])
            finally:
                proceed.set()
                worker.join(timeout=60)
            assert not worker.is_alive()
            session._execute = original_execute
            # The guarded query completed normally and the lock was released:
            # the session serves the next caller as if nothing happened.
            assert outcome[0].result == reference
            assert session.run(query).result == reference


# -- serial reattach after a worker death ---------------------------------------------
class TestSerialReattach:
    def test_worker_death_mid_session_reattaches_serially(self):
        """With the restart budget disabled, a dead pool opens the circuit
        breaker: the interrupted query re-runs serially and later queries stay
        serial (degraded, not permanently fallen back) until the cooldown."""
        dataset, ranking = _instance(119, 64, [2, 3, 2], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 40, "iter_td")
        reference = detect_biased_groups(
            dataset, ranking, query.bound, query.tau_s, query.k_min, query.k_max,
            algorithm=query.algorithm,
        )
        # The lifecycle under test is the executor's; result reuse is disabled so
        # the repeated query genuinely reaches the (broken) pool each time.  A
        # long cooldown keeps the breaker open for the whole test.
        with AuditSession(
            dataset, ranking,
            execution=ExecutionConfig(
                workers=2, max_worker_restarts=0, breaker_cooldown=300.0
            ),
            result_cache_capacity=0,
        ) as session:
            first = session.run(query)
            assert first.result == reference.result
            executor = session._executor
            assert executor is not None
            for process in executor._processes:
                process.terminate()
                process.join(timeout=5.0)
            # The interrupted query is rerun serially, bit-identically.
            second = session.run(query)
            assert second.result == reference.result
            assert second.stats.extra.get("executor_reattach") == 1
            assert second.stats.degraded_queries == 1
            assert not executor.healthy
            assert session._executor is None
            assert session.degraded
            # Within the cooldown the session serves serially without probing a
            # new pool — degraded, not permanently serial.
            third = session.run(query)
            assert third.result == reference.result
            assert third.stats.degraded_queries == 1
            assert "parallel_fallback" not in third.stats.extra
            assert "executor_reattach" not in third.stats.extra
            assert session._executor is None

    def test_reattach_on_creating_query_keeps_lifecycle_counters(self, monkeypatch):
        """A worker death during the pool-creating query must not erase the
        shm_publishes/pool_spawns it already paid for: the session-wide sums are
        the reuse accounting the benchmarks gate on."""
        def dying_search(self, *args, **kwargs):
            from repro.exceptions import ExecutorBrokenError

            self._broken = True
            raise ExecutorBrokenError("simulated worker death")

        monkeypatch.setattr(ParallelSearchExecutor, "search", dying_search)
        dataset, ranking = _instance(124, 56, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        reference = detect_biased_groups(
            dataset, ranking, query.bound, query.tau_s, query.k_min, query.k_max,
            algorithm=query.algorithm,
        )
        with AuditSession(
            dataset, ranking, execution=ExecutionConfig(workers=2)
        ) as session:
            report = session.run(query)
        assert report.result == reference.result
        assert report.stats.extra.get("executor_reattach") == 1
        assert report.stats.extra.get("shm_publishes") == 1
        assert report.stats.extra.get("pool_spawns") == 1

    def test_platform_without_shared_memory_stays_serial(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "shared_memory_available", lambda: False)
        dataset, ranking = _instance(120, 50, [2, 2], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 20)
        with AuditSession(
            dataset, ranking, execution=ExecutionConfig(workers=2),
            result_cache_capacity=0,
        ) as session:
            reports = [session.run(query) for _ in range(2)]
        reference = detect_biased_groups(
            dataset, ranking, query.bound, query.tau_s, query.k_min, query.k_max
        )
        for report in reports:
            assert report.result == reference.result
            assert report.stats.extra.get("parallel_fallback") == 1


# -- compatibility wrappers -----------------------------------------------------------
class TestCompatibilityWrappers:
    def test_detector_detect_equals_session_run_detector(self):
        from repro.core.global_bounds import GlobalBoundsDetector

        dataset, ranking = _instance(121, 56, [2, 3], 1.0)
        detector = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=2.0), tau_s=2, k_min=2, k_max=30
        )
        one_shot = detector.detect(dataset, ranking)
        with AuditSession(dataset, ranking) as session:
            via_session = session.run_detector(detector)
        assert one_shot.result == via_session.result
        assert one_shot.stats.nodes_evaluated == via_session.stats.nodes_evaluated

    def test_detect_biased_groups_reports_have_query(self):
        dataset, ranking = _instance(122, 40, [2, 2], 1.0)
        report = detect_biased_groups(
            dataset, ranking, GlobalBoundSpec(lower_bounds=2.0), 2, 2, 10
        )
        assert report.query is not None
        assert report.query.resolved_algorithm() == "global_bounds"

    def test_one_shot_session_closes_its_executor(self):
        dataset, ranking = _instance(123, 60, [2, 3], 1.0)
        created = []
        real_init = ParallelSearchExecutor.__init__

        def tracking_init(self, *args, **kwargs):
            created.append(self)
            return real_init(self, *args, **kwargs)

        import unittest.mock as mock

        with mock.patch.object(ParallelSearchExecutor, "__init__", tracking_init):
            report = detect_biased_groups(
                dataset, ranking, GlobalBoundSpec(lower_bounds=2.0), 2, 2, 20,
                execution=ExecutionConfig(workers=2),
            )
        assert report.result.total_reported() >= 0
        assert len(created) == 1
        assert created[0].closed
        assert not any(process.is_alive() for process in created[0]._processes)
