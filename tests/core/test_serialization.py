"""Tests for repro.core.serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.bounds import GlobalBoundSpec
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.pattern import Pattern
from repro.core.result_set import DetectionResult
from repro.core.serialization import (
    load_result,
    pattern_from_dict,
    pattern_to_dict,
    report_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.exceptions import DetectionError


class TestPatternSerialization:
    def test_round_trip(self):
        pattern = Pattern({"School": "GP", "Failures": 1})
        assert pattern_from_dict(pattern_to_dict(pattern)) == pattern

    def test_empty_pattern(self):
        assert pattern_from_dict(pattern_to_dict(Pattern())) == Pattern()


class TestResultSerialization:
    def make_result(self) -> DetectionResult:
        return DetectionResult(
            {
                4: [Pattern({"Address": "U"}), Pattern({"Failures": 1})],
                5: [Pattern({"Gender": "F"})],
            }
        )

    def test_round_trip_in_memory(self):
        result = self.make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_round_trip_via_file(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "result.json"
        save_result(result, path)
        assert load_result(path) == result
        # The file is plain JSON and sorted, so it is stable and diffable.
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format_version"] == 1
        assert set(payload["per_k"]) == {"4", "5"}

    def test_version_check(self):
        with pytest.raises(DetectionError):
            result_from_dict({"format_version": 99, "per_k": {}})

    def test_malformed_payloads(self, tmp_path):
        with pytest.raises(DetectionError):
            result_from_dict({"format_version": 1})
        with pytest.raises(DetectionError):
            result_from_dict({"format_version": 1, "per_k": {"not a number": []}})
        bad_file = tmp_path / "bad.json"
        bad_file.write_text("{not json", encoding="utf-8")
        with pytest.raises(DetectionError):
            load_result(bad_file)


class TestReportSerialization:
    def test_report_round_trip_preserves_groups_and_context(self, toy_dataset, toy_ranking, tmp_path):
        report = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)
        path = tmp_path / "report.json"
        save_result(report, path)

        reloaded = load_result(path)
        assert reloaded == report.result

        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["algorithm"] == "GlobalBounds"
        assert payload["parameters"]["tau_s"] == 4
        assert payload["stats"]["nodes_evaluated"] > 0
        groups_k4 = payload["groups"]["4"]
        assert all(group["count_in_top_k"] < group["bound"] for group in groups_k4)
        described = {tuple(sorted(group["pattern"].items())) for group in groups_k4}
        assert tuple(sorted({"Address": "U"}.items())) in described
