"""Tests for repro.core.serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec, step_lower_bounds
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.pattern import Pattern
from repro.core.result_set import DetectionResult
from repro.core.serialization import (
    REPORT_FORMAT_VERSION,
    bound_from_dict,
    bound_to_dict,
    load_report,
    load_result,
    pattern_from_dict,
    pattern_to_dict,
    report_from_dict,
    report_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
    stats_from_dict,
)
from repro.exceptions import DetectionError


class TestPatternSerialization:
    def test_round_trip(self):
        pattern = Pattern({"School": "GP", "Failures": 1})
        assert pattern_from_dict(pattern_to_dict(pattern)) == pattern

    def test_empty_pattern(self):
        assert pattern_from_dict(pattern_to_dict(Pattern())) == Pattern()


class TestResultSerialization:
    def make_result(self) -> DetectionResult:
        return DetectionResult(
            {
                4: [Pattern({"Address": "U"}), Pattern({"Failures": 1})],
                5: [Pattern({"Gender": "F"})],
            }
        )

    def test_round_trip_in_memory(self):
        result = self.make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_round_trip_via_file(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "result.json"
        save_result(result, path)
        assert load_result(path) == result
        # The file is plain JSON and sorted, so it is stable and diffable.
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format_version"] == 1
        assert set(payload["per_k"]) == {"4", "5"}

    def test_version_check(self):
        with pytest.raises(DetectionError):
            result_from_dict({"format_version": 99, "per_k": {}})

    def test_malformed_payloads(self, tmp_path):
        with pytest.raises(DetectionError):
            result_from_dict({"format_version": 1})
        with pytest.raises(DetectionError):
            result_from_dict({"format_version": 1, "per_k": {"not a number": []}})
        bad_file = tmp_path / "bad.json"
        bad_file.write_text("{not json", encoding="utf-8")
        with pytest.raises(DetectionError):
            load_result(bad_file)


class TestBoundSerialization:
    @pytest.mark.parametrize(
        "bound",
        [
            GlobalBoundSpec(lower_bounds=2.0),
            GlobalBoundSpec(lower_bounds=2.0, upper_bounds=10.0),
            GlobalBoundSpec(lower_bounds=step_lower_bounds({10: 10, 20: 20, 30: 30})),
            GlobalBoundSpec(
                lower_bounds=step_lower_bounds({5: 1.0, 15: 4.0}), upper_bounds={5: 40.0}
            ),
            ProportionalBoundSpec(alpha=0.8),
            ProportionalBoundSpec(alpha=0.8, beta=2.5),
        ],
    )
    def test_round_trip(self, bound):
        rebuilt = bound_from_dict(bound_to_dict(bound))
        assert rebuilt == bound
        # The rebuilt bound must behave identically, not just compare equal.
        # (Every schedule above starts at k <= 10, so these ks are all defined.)
        for k in (12, 25, 31):
            assert rebuilt.lower(k, 50, 200) == bound.lower(k, 50, 200)
            assert rebuilt.upper(k, 50, 200) == bound.upper(k, 50, 200)

    def test_payload_is_json_compatible(self):
        bound = GlobalBoundSpec(lower_bounds=step_lower_bounds({10: 10, 20: 20}))
        payload = json.loads(json.dumps(bound_to_dict(bound)))
        assert bound_from_dict(payload) == bound

    def test_callable_schedule_saves_opaque_but_refuses_rebuild(self):
        bound = GlobalBoundSpec(lower_bounds=len)  # any callable
        payload = bound_to_dict(bound)
        assert payload["lower_bounds"]["kind"] == "opaque"
        with pytest.raises(DetectionError):
            bound_from_dict(payload)

    def test_unknown_payloads_rejected(self):
        with pytest.raises(DetectionError):
            bound_from_dict({"type": "exotic"})
        with pytest.raises(DetectionError):
            bound_from_dict({"type": "proportional"})
        with pytest.raises(DetectionError):
            bound_from_dict({"type": "global", "lower_bounds": {"kind": "wat"}})


class TestReportSerialization:
    def test_report_round_trip_preserves_groups_and_context(self, toy_dataset, toy_ranking, tmp_path):
        report = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)
        path = tmp_path / "report.json"
        save_result(report, path)

        reloaded = load_result(path)
        assert reloaded == report.result

        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["algorithm"] == "GlobalBounds"
        assert payload["report_format_version"] == REPORT_FORMAT_VERSION
        assert payload["parameters"]["tau_s"] == 4
        assert payload["stats"]["nodes_evaluated"] > 0
        groups_k4 = payload["groups"]["4"]
        assert all(group["count_in_top_k"] < group["bound"] for group in groups_k4)
        described = {tuple(sorted(group["pattern"].items())) for group in groups_k4}
        assert tuple(sorted({"Address": "U"}.items())) in described

    def test_load_report_full_round_trip(self, toy_dataset, toy_ranking, tmp_path):
        report = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=step_lower_bounds({4: 2.0})),
            tau_s=4, k_min=4, k_max=5,
        ).detect(toy_dataset, toy_ranking)
        path = tmp_path / "report.json"
        save_result(report, path)

        loaded = load_report(path)
        assert loaded.algorithm == report.algorithm
        assert loaded.result == report.result
        assert loaded.parameters.bound == report.parameters.bound
        assert loaded.parameters.tau_s == report.parameters.tau_s
        assert loaded.parameters.k_min == report.parameters.k_min
        assert loaded.parameters.k_max == report.parameters.k_max
        assert loaded.stats.as_dict() == report.stats.as_dict()
        for k in report.result.k_values:
            assert loaded.groups_at(k) == report.groups_at(k)
            for order_by in ("size", "bias"):
                assert loaded.detailed_groups(k, order_by) == report.detailed_groups(k, order_by)
        with pytest.raises(DetectionError):
            loaded.detailed_groups(4, order_by="alphabetical")

    def test_load_report_round_trips_proportional_bound(
        self, toy_dataset, toy_ranking, tmp_path
    ):
        from repro.core import detect_biased_groups

        report = detect_biased_groups(
            toy_dataset, toy_ranking, ProportionalBoundSpec(alpha=0.9),
            tau_s=5, k_min=4, k_max=5,
        )
        path = tmp_path / "prop_report.json"
        save_result(report, path)
        loaded = load_report(path)
        assert loaded.parameters.bound == ProportionalBoundSpec(alpha=0.9)
        assert loaded.result == report.result

    def test_load_report_rejects_result_only_and_legacy_payloads(self, tmp_path):
        result_path = tmp_path / "result.json"
        save_result(DetectionResult({4: [Pattern({"A": 1})]}), result_path)
        with pytest.raises(DetectionError):
            load_report(result_path)
        # A pre-version-2 report payload (bound stored as repr only).
        legacy = {
            "format_version": 1,
            "per_k": {"4": []},
            "algorithm": "GlobalBounds",
            "parameters": {"tau_s": 4, "k_min": 4, "k_max": 5, "bound": "GlobalBoundSpec(...)"},
        }
        with pytest.raises(DetectionError):
            report_from_dict(legacy)
        # load_result still reads both shapes.
        legacy_path = tmp_path / "legacy.json"
        legacy_path.write_text(json.dumps(legacy), encoding="utf-8")
        assert load_result(legacy_path).k_values == (4,)

    def test_loaded_report_can_be_resaved(self, toy_dataset, toy_ranking, tmp_path):
        report = GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)
        first_path = tmp_path / "first.json"
        save_result(report, first_path)
        loaded = load_report(first_path)
        second_path = tmp_path / "second.json"
        save_result(loaded, second_path)
        resaved = load_report(second_path)
        assert resaved.result == report.result
        assert resaved.parameters.bound == report.parameters.bound
        assert resaved.stats.as_dict() == report.stats.as_dict()
        for k in report.result.k_values:
            assert resaved.detailed_groups(k) == report.detailed_groups(k)

    def test_stats_round_trip_preserves_extra_counters(self):
        from repro.core.stats import SearchStats

        stats = SearchStats(nodes_evaluated=7, cache_hits=3, elapsed_seconds=0.5)
        stats.bump("incremental_steps", 4)
        rebuilt = stats_from_dict(json.loads(json.dumps(stats.as_dict())))
        assert rebuilt.as_dict() == stats.as_dict()

    def test_stats_round_trip_preserves_plan_and_cache_counters(self):
        """The planner/result-cache provenance counters persist in reports."""
        from repro.core.stats import SearchStats

        stats = SearchStats(
            result_cache_hits=2, result_cache_misses=1, plan_merged_queries=3
        )
        flat = stats.as_dict()
        assert flat["result_cache_hits"] == 2
        assert flat["result_cache_misses"] == 1
        assert flat["plan_merged_queries"] == 3
        rebuilt = stats_from_dict(json.loads(json.dumps(flat)))
        assert rebuilt.result_cache_hits == 2
        assert rebuilt.result_cache_misses == 1
        assert rebuilt.plan_merged_queries == 3

    def test_stats_round_trip_preserves_fault_tolerance_counters(self):
        """The supervisor/breaker counters flow through the v3 sweep serde like
        every other dataclass field (stats_from_dict is reflection-based)."""
        from repro.core.stats import SearchStats

        stats = SearchStats(
            worker_restarts=2,
            shard_retries=3,
            heartbeat_timeouts=1,
            query_deadline_exceeded=1,
            degraded_queries=4,
            executor_recoveries=1,
        )
        flat = stats.as_dict()
        for name in (
            "worker_restarts", "shard_retries", "heartbeat_timeouts",
            "query_deadline_exceeded", "degraded_queries", "executor_recoveries",
        ):
            assert name in flat
        rebuilt = stats_from_dict(json.loads(json.dumps(flat)))
        assert rebuilt.as_dict() == stats.as_dict()
        # absorb() folds the new counters by reflection, like the executor does.
        merged = SearchStats(worker_restarts=1).merge(rebuilt)
        assert merged.worker_restarts == 3
        assert merged.executor_recoveries == 1
