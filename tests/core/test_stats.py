"""Tests for repro.core.stats."""

from __future__ import annotations

import pytest

from repro.core.stats import SearchStats, examined_gain


class TestSearchStats:
    def test_bump_and_as_dict(self):
        stats = SearchStats(nodes_generated=10, nodes_evaluated=7)
        stats.bump("restarts")
        stats.bump("restarts", 2)
        flat = stats.as_dict()
        assert flat["nodes_generated"] == 10
        assert flat["restarts"] == 3

    def test_merge_sums_counters(self):
        first = SearchStats(nodes_generated=5, nodes_evaluated=3, size_computations=4, full_searches=1)
        first.bump("x", 2)
        second = SearchStats(nodes_generated=1, nodes_evaluated=2, size_computations=3, full_searches=2)
        second.bump("x", 1)
        second.bump("y", 7)
        merged = first.merge(second)
        assert merged.nodes_generated == 6
        assert merged.nodes_evaluated == 5
        assert merged.size_computations == 7
        assert merged.full_searches == 3
        assert merged.extra == {"x": 3, "y": 7}
        # merge does not mutate its inputs
        assert first.extra == {"x": 2}


class TestExaminedGain:
    def test_percentage(self):
        baseline = SearchStats(nodes_evaluated=200)
        optimized = SearchStats(nodes_evaluated=120)
        assert examined_gain(baseline, optimized) == pytest.approx(40.0)

    def test_zero_baseline(self):
        assert examined_gain(SearchStats(), SearchStats(nodes_evaluated=5)) == 0.0

    def test_negative_gain_possible(self):
        baseline = SearchStats(nodes_evaluated=10)
        optimized = SearchStats(nodes_evaluated=12)
        assert examined_gain(baseline, optimized) == pytest.approx(-20.0)
