"""Tests for the Detector/DetectionReport API and the detect_biased_groups facade."""

from __future__ import annotations

import pytest

from repro.core import detect_biased_groups
from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.global_bounds import GlobalBoundsDetector
from repro.core.pattern import Pattern
from repro.exceptions import DetectionError


class TestDetectionReport:
    @pytest.fixture()
    def report(self, toy_dataset, toy_ranking):
        return GlobalBoundsDetector(
            bound=GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        ).detect(toy_dataset, toy_ranking)

    def test_detailed_groups_ordering(self, report):
        by_size = report.detailed_groups(4, order_by="size")
        assert by_size == sorted(by_size, key=lambda g: (-g.size_in_data, g.pattern.describe()))
        by_bias = report.detailed_groups(4, order_by="bias")
        assert by_bias == sorted(by_bias, key=lambda g: (-g.bias_gap, g.pattern.describe()))
        assert {group.pattern for group in by_size} == set(report.groups_at(4))

    def test_detailed_groups_values(self, report, toy_dataset, toy_ranking):
        for group in report.detailed_groups(4):
            assert group.size_in_data == toy_dataset.count(group.pattern)
            assert group.count_in_top_k == toy_ranking.count_in_top_k(group.pattern, 4)
            assert group.bound == 2.0
            assert group.count_in_top_k < group.bound

    def test_invalid_order_by(self, report):
        with pytest.raises(DetectionError):
            report.detailed_groups(4, order_by="alphabetical")

    def test_describe_contains_groups(self, report):
        text = report.describe()
        assert "GlobalBounds" in text
        assert "Address=U" in text

    def test_describe_truncates(self, report):
        text = report.describe(max_rows=1)
        assert "more rows" in text

    def test_repr(self, report):
        assert "GlobalBounds" in repr(report)
        assert "total_reported" in repr(report)

    def test_stats_elapsed_recorded(self, report):
        assert report.stats.elapsed_seconds > 0


class TestFacade:
    def test_auto_selects_global_bounds(self, toy_dataset, toy_ranking):
        report = detect_biased_groups(
            toy_dataset, toy_ranking, GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        )
        assert report.algorithm == "GlobalBounds"

    def test_auto_selects_prop_bounds(self, toy_dataset, toy_ranking):
        report = detect_biased_groups(
            toy_dataset, toy_ranking, ProportionalBoundSpec(alpha=0.9), tau_s=5, k_min=4, k_max=5
        )
        assert report.algorithm == "PropBounds"
        assert Pattern({"Gender": "F"}) in report.groups_at(5)

    def test_explicit_algorithm(self, toy_dataset, toy_ranking):
        report = detect_biased_groups(
            toy_dataset,
            toy_ranking,
            GlobalBoundSpec(lower_bounds=2),
            tau_s=4,
            k_min=4,
            k_max=5,
            algorithm="iter_td",
        )
        assert report.algorithm == "IterTD"

    def test_unknown_algorithm(self, toy_dataset, toy_ranking):
        with pytest.raises(ValueError):
            detect_biased_groups(
                toy_dataset,
                toy_ranking,
                GlobalBoundSpec(lower_bounds=2),
                tau_s=4,
                k_min=4,
                k_max=5,
                algorithm="quantum",
            )

    def test_accepts_ranker(self, toy_dataset):
        from repro.ranking.workloads import toy_ranker

        report = detect_biased_groups(
            toy_dataset, toy_ranker(), GlobalBoundSpec(lower_bounds=2), tau_s=4, k_min=4, k_max=5
        )
        assert report.result.total_reported() > 0
