"""Tests for repro.core.bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    GlobalBoundSpec,
    ProportionalBoundSpec,
    paper_default_global_bounds,
    paper_default_proportional_bounds,
    step_lower_bounds,
)
from repro.exceptions import BoundSpecError


class TestGlobalBoundSpec:
    def test_constant_bound(self):
        spec = GlobalBoundSpec(lower_bounds=5)
        assert spec.lower(10, 100, 1000) == 5.0
        assert spec.upper(10, 100, 1000) is None
        assert not spec.pattern_dependent

    def test_step_schedule_resolution(self):
        spec = GlobalBoundSpec(lower_bounds={10: 10, 20: 20, 30: 30, 40: 40})
        assert spec.lower(10, 0, 0) == 10
        assert spec.lower(19, 0, 0) == 10
        assert spec.lower(20, 0, 0) == 20
        assert spec.lower(49, 0, 0) == 40
        with pytest.raises(BoundSpecError):
            spec.lower(5, 0, 0)

    def test_callable_bound(self):
        spec = GlobalBoundSpec(lower_bounds=lambda k: k // 2)
        assert spec.lower(10, 0, 0) == 5.0

    def test_upper_bound_and_violations(self):
        spec = GlobalBoundSpec(lower_bounds=2, upper_bounds=7)
        assert spec.upper(10, 0, 0) == 7.0
        assert spec.violates_lower(1, 10, 0, 0)
        assert not spec.violates_lower(2, 10, 0, 0)
        assert spec.violates_upper(8, 10, 0, 0)
        assert not spec.violates_upper(7, 10, 0, 0)

    def test_lower_changes_at(self):
        spec = GlobalBoundSpec(lower_bounds={10: 10, 20: 20})
        assert not spec.lower_changes_at(15, 0, 0)
        assert spec.lower_changes_at(20, 0, 0)

    def test_next_violation_k(self):
        spec = GlobalBoundSpec(lower_bounds={10: 10, 20: 20})
        # A pattern with 15 tuples in the top-k first violates when the bound becomes 20.
        assert spec.next_violation_k(count=15, k=12, k_max=30, size_in_data=0, dataset_size=0) == 20
        assert spec.next_violation_k(count=25, k=12, k_max=30, size_in_data=0, dataset_size=0) is None


class TestProportionalBoundSpec:
    def test_lower_formula_matches_example_4_7(self):
        """Example 4.7: alpha=0.9, s_D=8, |D|=16 -> bound 1.8 at k=4 and 2.25 at k=5."""
        spec = ProportionalBoundSpec(alpha=0.9)
        assert spec.lower(4, 8, 16) == pytest.approx(1.8)
        assert spec.lower(5, 8, 16) == pytest.approx(2.25)
        assert spec.pattern_dependent

    def test_k_tilde_matches_example_4_7(self):
        """{Gender=F} has count 2 at k=4; its k-tilde is 5."""
        spec = ProportionalBoundSpec(alpha=0.9)
        assert spec.next_violation_k(count=2, k=4, k_max=16, size_in_data=8, dataset_size=16) == 5

    def test_k_tilde_none_when_beyond_k_max(self):
        spec = ProportionalBoundSpec(alpha=0.9)
        assert spec.next_violation_k(count=2, k=4, k_max=4, size_in_data=8, dataset_size=16) is None

    def test_upper_bound_with_beta(self):
        spec = ProportionalBoundSpec(alpha=0.5, beta=1.5)
        assert spec.upper(10, 100, 1000) == pytest.approx(1.5)
        assert spec.violates_upper(2, 10, 100, 1000)

    def test_validation(self):
        with pytest.raises(BoundSpecError):
            ProportionalBoundSpec(alpha=0.0)
        with pytest.raises(BoundSpecError):
            ProportionalBoundSpec(alpha=0.8, beta=0.5)
        spec = ProportionalBoundSpec(alpha=0.8)
        with pytest.raises(BoundSpecError):
            spec.lower(5, 10, 0)

    @given(
        alpha=st.floats(min_value=0.1, max_value=2.0),
        count=st.integers(min_value=0, max_value=50),
        size=st.integers(min_value=1, max_value=200),
        k=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=120, deadline=None)
    def test_k_tilde_is_the_first_violation(self, alpha, count, size, k):
        """k-tilde is the minimal k' > k violating the bound; no earlier k' violates."""
        spec = ProportionalBoundSpec(alpha=alpha)
        dataset_size = 500
        k_max = 200
        k_tilde = spec.next_violation_k(count, k, k_max, size, dataset_size)
        if k_tilde is None:
            for candidate in range(k + 1, k_max + 1):
                assert count >= spec.lower(candidate, size, dataset_size)
        else:
            assert k < k_tilde <= k_max
            assert count < spec.lower(k_tilde, size, dataset_size)
            for candidate in range(k + 1, k_tilde):
                assert count >= spec.lower(candidate, size, dataset_size)


class TestHelpers:
    def test_step_lower_bounds_validation(self):
        assert step_lower_bounds({20: 20, 10: 10}) == {10: 10, 20: 20}
        with pytest.raises(BoundSpecError):
            step_lower_bounds({})
        with pytest.raises(BoundSpecError):
            step_lower_bounds({10: 20, 20: 10})

    def test_paper_defaults(self):
        global_spec = paper_default_global_bounds()
        assert global_spec.lower(10, 0, 0) == 10
        assert global_spec.lower(49, 0, 0) == 40
        prop_spec = paper_default_proportional_bounds()
        assert prop_spec.alpha == pytest.approx(0.8)
