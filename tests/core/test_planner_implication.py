"""Containment-lattice implication serving: refinement, two-sided extension, serde.

The property at stake is the optimizer's core guarantee: however a batch of
same-family threshold queries is served — one anchored covering run plus
implication refinements, a two-sided frontier extension, or a degraded full
re-run — every report's *result* is bit-identical to a cold per-query loop,
and the engine-work counters prove the cheaper path was actually taken.

The suites randomize thresholds and k ranges (seeded, so failures replay),
cover all three refinable algorithms plus UpperBounds (never refinable —
opposite monotone direction), exercise serial and two-worker thread/process
backends, and round-trip v3 (evidence-less) store files through the v4 serde.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec, step_lower_bounds
from repro.core.engine.parallel import ExecutionConfig
from repro.core.planner import (
    DetectionQuery,
    RefineStep,
    plan_queries,
    query_family_key,
    query_implies,
)
from repro.core.result_store import DiskResultStore, InMemoryResultStore
from repro.core.serialization import (
    MIN_SWEEP_FORMAT_VERSION,
    SWEEP_FORMAT_VERSION,
)
from repro.core.session import AuditSession, detect_biased_groups
from repro.core.tuning import threshold_sweep
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float = 1.0):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=weights,
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


def _cold_loop(dataset, ranking, queries):
    """The reference: one isolated one-shot call per query, in order."""
    return [
        detect_biased_groups(
            dataset, ranking, q.bound, q.tau_s, q.k_min, q.k_max, algorithm=q.algorithm
        )
        for q in queries
    ]


def _assert_bit_identical(planned, cold):
    assert len(planned) == len(cold)
    for served, reference in zip(planned, cold):
        assert served.result == reference.result


def _random_batch(rng, algorithm: str, n_queries: int) -> list[DetectionQuery]:
    """A mixed-threshold, mixed-k-range batch of one algorithm's family."""
    queries = []
    for _ in range(n_queries):
        k_min = int(rng.integers(2, 8))
        k_max = k_min + int(rng.integers(3, 14))
        tau_s = int(rng.choice([1, 2]))
        if algorithm == "prop_bounds":
            bound = ProportionalBoundSpec(alpha=float(rng.uniform(0.3, 1.4)))
        else:
            bound = GlobalBoundSpec(lower_bounds=float(rng.uniform(1.0, 9.0)))
        queries.append(DetectionQuery(bound, tau_s, k_min, k_max, algorithm))
    return queries


# -- the lattice itself ---------------------------------------------------------------
class TestImplicationLattice:
    def test_constant_global_bounds_imply_downward(self):
        weak = DetectionQuery(GlobalBoundSpec(lower_bounds=8.0), 2, 2, 20, "global_bounds")
        tight = DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), 2, 2, 20, "global_bounds")
        assert query_family_key(weak) == query_family_key(tight)
        assert query_implies(weak, tight)
        assert not query_implies(tight, weak)

    def test_step_schedules_compare_pointwise(self):
        low = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0}))
        high = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 2.0, 10: 5.0}))
        crossing = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 0.5, 10: 9.0}))
        weak = DetectionQuery(high, 2, 2, 20, "global_bounds")
        tight = DetectionQuery(low, 2, 2, 20, "global_bounds")
        mixed = DetectionQuery(crossing, 2, 2, 20, "global_bounds")
        assert query_implies(weak, tight)
        assert not query_implies(mixed, tight) and not query_implies(tight, mixed)

    def test_alpha_orders_proportional_families(self):
        weak = DetectionQuery(ProportionalBoundSpec(alpha=1.2), 2, 2, 20, "prop_bounds")
        tight = DetectionQuery(ProportionalBoundSpec(alpha=0.6), 2, 2, 20, "prop_bounds")
        assert query_implies(weak, tight) and not query_implies(tight, weak)

    def test_families_split_on_tau_and_algorithm_and_shape(self):
        base = DetectionQuery(GlobalBoundSpec(lower_bounds=4.0), 2, 2, 20, "global_bounds")
        assert query_family_key(base) != query_family_key(
            DetectionQuery(GlobalBoundSpec(lower_bounds=4.0), 3, 2, 20, "global_bounds")
        )
        assert query_family_key(base) != query_family_key(
            DetectionQuery(GlobalBoundSpec(lower_bounds=4.0), 2, 2, 20, "iter_td")
        )
        assert query_family_key(base) != query_family_key(
            DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 20, "prop_bounds")
        )

    def test_upper_bounds_queries_have_no_family(self):
        # UpperBounds audits over-representation: its below/above monotonicity
        # runs the opposite way, so it must never join a refinement lattice.
        query = DetectionQuery(
            ProportionalBoundSpec(alpha=0.9), 2, 2, 20, "upper_bounds", beta=1.8
        )
        assert query_family_key(query) is None

    def test_threshold_family_plans_one_anchor(self):
        queries = [
            DetectionQuery(GlobalBoundSpec(lower_bounds=level), 2, 2, 20, "global_bounds")
            for level in (2.0, 4.0, 6.0, 8.0)
        ]
        plan = plan_queries(queries)
        refinements = [step for step in plan.steps if isinstance(step, RefineStep)]
        anchors = [step for step in plan.steps if not isinstance(step, RefineStep)]
        assert len(anchors) == 1 and len(refinements) == 3
        # The anchor is the weakest threshold; refinements run tightest-last.
        assert anchors[0].query.bound.lower(5, 0, 1) == 8.0
        ordering = [step.query.bound.lower(5, 0, 1) for step in plan.steps]
        assert ordering == sorted(ordering, reverse=True)


# -- randomized bit-identity over every serving path ----------------------------------
class TestRandomizedBitIdentity:
    @pytest.mark.parametrize("algorithm", ["global_bounds", "prop_bounds", "iter_td"])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_mixed_batches_match_cold_loop_serially(self, algorithm, seed):
        dataset, ranking = _instance(seed, 420, [3, 4, 2])
        rng = np.random.default_rng(seed * 7)
        queries = _random_batch(rng, algorithm, 8)
        cold = _cold_loop(dataset, ranking, queries)
        with AuditSession(dataset, ranking) as session:
            planned = session.run_many(queries)
        _assert_bit_identical(planned, cold)
        # The batch never does more engine work than the cold loop.
        assert sum(r.stats.full_searches for r in planned) <= sum(
            r.stats.full_searches for r in cold
        )

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("algorithm", ["global_bounds", "prop_bounds", "iter_td"])
    def test_mixed_batches_match_cold_loop_with_workers(self, backend, algorithm):
        dataset, ranking = _instance(31, 420, [3, 4, 2])
        rng = np.random.default_rng(31)
        queries = _random_batch(rng, algorithm, 6)
        cold = _cold_loop(dataset, ranking, queries)
        execution = ExecutionConfig(workers=2, backend=backend)
        with AuditSession(dataset, ranking, execution=execution) as session:
            planned = session.run_many(queries)
        _assert_bit_identical(planned, cold)

    def test_tuning_threshold_sweep_is_one_anchored_search(self):
        dataset, ranking = _instance(43, 420, [3, 4, 2])
        levels = [2.0, 3.0, 4.0, 5.5, 7.0, 9.0]
        swept = threshold_sweep(dataset, ranking, 2, 2, 18, lower_bounds=levels)
        cold = _cold_loop(
            dataset,
            ranking,
            [
                DetectionQuery(GlobalBoundSpec(lower_bounds=v), 2, 2, 18, "global_bounds")
                for v in levels
            ],
        )
        _assert_bit_identical([item.report for item in swept], cold)
        misses = sum(item.report.stats.result_cache_misses for item in swept)
        hits = sum(item.report.stats.implication_hits for item in swept)
        assert misses == 1 and hits == len(levels) - 1

    def test_alpha_sweep_refines_proportional_families(self):
        dataset, ranking = _instance(47, 380, [3, 3, 2])
        alphas = [0.4, 0.7, 1.0, 1.3]
        swept = threshold_sweep(dataset, ranking, 2, 2, 15, alphas=alphas)
        cold = _cold_loop(
            dataset,
            ranking,
            [
                DetectionQuery(ProportionalBoundSpec(alpha=a), 2, 2, 15, "prop_bounds")
                for a in alphas
            ],
        )
        _assert_bit_identical([item.report for item in swept], cold)
        assert sum(item.report.stats.implication_hits for item in swept) == len(alphas) - 1


# -- two-sided extension --------------------------------------------------------------
class TestTwoSidedExtension:
    @pytest.mark.parametrize("algorithm", ["global_bounds", "prop_bounds", "iter_td"])
    def test_prefix_and_suffix_splice_bit_identically(self, algorithm):
        dataset, ranking = _instance(53, 420, [3, 4, 2])
        if algorithm == "prop_bounds":
            bound = ProportionalBoundSpec(alpha=0.9)
        else:
            bound = GlobalBoundSpec(lower_bounds=3.0)
        with AuditSession(dataset, ranking) as session:
            session.run(DetectionQuery(bound, 2, 8, 16, algorithm))
            widened = session.run(DetectionQuery(bound, 2, 4, 22, algorithm))
        cold = detect_biased_groups(dataset, ranking, bound, 2, 4, 22, algorithm=algorithm)
        assert widened.result == cold.result
        assert widened.stats.result_cache_partial_hits == 1
        assert widened.stats.prefix_extended_k_values == 4
        assert widened.stats.extended_k_values == 6

    def test_prefix_only_extension_needs_no_resumable_frontier(self):
        dataset, ranking = _instance(59, 420, [3, 4, 2])
        bound = GlobalBoundSpec(lower_bounds=3.0)
        with AuditSession(dataset, ranking) as session:
            session.run(DetectionQuery(bound, 2, 8, 20, "global_bounds"))
            # Make the cached frontier useless for a suffix resume (and for
            # refinement): the prefix side must still extend.
            store = session.result_cache
            for entry in store._entries.values():
                entry.frontier.resumable = False
                entry.frontier.evidence = None
                entry.frontier.evidence_sizes = None
            widened = session.run(DetectionQuery(bound, 2, 3, 20, "global_bounds"))
        cold = detect_biased_groups(dataset, ranking, bound, 2, 3, 20, algorithm="global_bounds")
        assert widened.result == cold.result
        assert widened.stats.prefix_extended_k_values == 5
        assert widened.stats.extended_k_values == 0

    def test_upper_bounds_extends_per_k_independently(self):
        dataset, ranking = _instance(61, 380, [3, 3, 2])
        query = DetectionQuery(
            ProportionalBoundSpec(alpha=0.9), 2, 8, 16, "upper_bounds", beta=1.8
        )
        widened_query = DetectionQuery(
            ProportionalBoundSpec(alpha=0.9), 2, 4, 20, "upper_bounds", beta=1.8
        )
        with AuditSession(dataset, ranking) as session:
            session.run(query)
            widened = session.run(widened_query)
        # detect_biased_groups cannot express beta; a fresh session is cold.
        with AuditSession(dataset, ranking) as fresh:
            cold = fresh.run(widened_query)
        assert widened.result == cold.result
        assert widened.stats.result_cache_partial_hits == 1
        assert widened.stats.prefix_extended_k_values == 4

    def test_extended_sweep_still_anchors_refinements(self):
        # Evidence merged across the spliced pieces keeps the widened entry
        # refinable over its whole range.
        dataset, ranking = _instance(67, 420, [3, 4, 2])
        weak = GlobalBoundSpec(lower_bounds=8.0)
        tight = GlobalBoundSpec(lower_bounds=3.0)
        with AuditSession(dataset, ranking) as session:
            session.run(DetectionQuery(weak, 2, 8, 16, "global_bounds"))
            session.run(DetectionQuery(weak, 2, 4, 22, "global_bounds"))
            refined = session.run(DetectionQuery(tight, 2, 4, 22, "global_bounds"))
        cold = detect_biased_groups(dataset, ranking, tight, 2, 4, 22, algorithm="global_bounds")
        assert refined.result == cold.result
        assert refined.stats.implication_hits == 1
        assert refined.stats.full_searches == 0


# -- degradation: a stale or evidence-less anchor must never corrupt results ----------
class TestStaleAnchorDegradation:
    def test_process_backend_iter_td_poisons_evidence_and_degrades(self):
        # IterTD's process workers ship reduced (classification-free) states;
        # the assembler must refuse to distill evidence from them, so tighter
        # queries degrade to full runs — and stay bit-identical.
        dataset, ranking = _instance(71, 420, [3, 4, 2])
        execution = ExecutionConfig(workers=2, backend="process")
        queries = [
            DetectionQuery(GlobalBoundSpec(lower_bounds=level), 2, 2, 12, "iter_td")
            for level in (7.0, 3.0)
        ]
        cold = _cold_loop(dataset, ranking, queries)
        with AuditSession(dataset, ranking, execution=execution) as session:
            planned = session.run_many(queries)
        _assert_bit_identical(planned, cold)

    def test_evicted_anchor_degrades_to_full_run(self):
        dataset, ranking = _instance(73, 420, [3, 4, 2])
        queries = [
            DetectionQuery(GlobalBoundSpec(lower_bounds=level), 2, 2, 12, "global_bounds")
            for level in (8.0, 3.0)
        ]
        cold = _cold_loop(dataset, ranking, queries)
        # capacity=0: nothing is retained, so the RefineStep's planned anchor
        # is served from the batch-local outcomes instead.
        with AuditSession(dataset, ranking, result_cache_capacity=0) as session:
            batch_served = session.run_many(queries)
        _assert_bit_identical(batch_served, cold)
        assert sum(r.stats.implication_hits for r in batch_served) == 1
        # Split across batches with capacity=0 the anchor is truly gone:
        # the tighter query degrades to a full run, still bit-identical.
        with AuditSession(dataset, ranking, result_cache_capacity=0) as session:
            session.run(queries[0])
            degraded = session.run(queries[1])
        assert degraded.result == cold[1].result
        assert degraded.stats.implication_hits == 0
        assert degraded.stats.result_cache_misses == 1


# -- store round-trips ----------------------------------------------------------------
class TestStoreRoundTrips:
    WEAK = DetectionQuery(GlobalBoundSpec(lower_bounds=8.0), 2, 2, 14, "global_bounds")
    TIGHT = DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), 2, 2, 14, "global_bounds")

    def test_disk_store_serves_refinements_across_processes(self, tmp_path):
        dataset, ranking = _instance(79, 420, [3, 4, 2])
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(self.WEAK)
        # A fresh store instance models a fresh process.
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=store) as session:
            refined = session.run(self.TIGHT)
        cold = _cold_loop(dataset, ranking, [self.TIGHT])[0]
        assert refined.result == cold.result
        assert refined.stats.implication_hits == 1
        assert store.refine_hits == 1

    def test_v3_files_degrade_to_non_refinable_hits(self, tmp_path):
        dataset, ranking = _instance(83, 420, [3, 4, 2])
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(self.WEAK)
        # Rewrite every file as a v3 payload under its legacy 3-part name.
        for path in sorted(tmp_path.glob("*.json")):
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert payload["sweep_format_version"] == SWEEP_FORMAT_VERSION
            payload["sweep_format_version"] = MIN_SWEEP_FORMAT_VERSION
            frontier = payload.get("frontier")
            if frontier is not None:
                frontier.pop("evidence", None)
                frontier.pop("evidence_sizes", None)
                frontier.pop("resumable", None)
            parts = path.stem.split("_")
            assert len(parts) == 4  # family-tagged v4 name
            legacy = path.with_name(f"{parts[0]}_{parts[2]}_{parts[3]}.json")
            legacy.write_text(json.dumps(payload), encoding="utf-8")
            path.unlink()
        store = DiskResultStore(tmp_path)
        # Containment still serves; refinement finds no evidence.
        with AuditSession(dataset, ranking, store=store) as session:
            served = session.run(self.WEAK)
            refined = session.run(self.TIGHT)
        assert served.stats.result_cache_hits == 1
        cold = _cold_loop(dataset, ranking, [self.TIGHT])[0]
        assert refined.result == cold.result
        assert refined.stats.implication_hits == 0
        assert store.refine_hits == 0

    def test_reinsert_replaces_legacy_named_file(self, tmp_path):
        # Satellite of the enriched-frontier fix: re-running the same range
        # with a v4-capable session must replace the legacy file (equal range
        # counts as contained), not shadow it forever.
        dataset, ranking = _instance(83, 420, [3, 4, 2])
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            session.run(self.WEAK)
        for path in sorted(tmp_path.glob("*.json")):
            parts = path.stem.split("_")
            payload = json.loads(path.read_text(encoding="utf-8"))
            payload["sweep_format_version"] = MIN_SWEEP_FORMAT_VERSION
            if payload.get("frontier") is not None:
                for field in ("evidence", "evidence_sizes", "resumable"):
                    payload["frontier"].pop(field, None)
            path.with_name(f"{parts[0]}_{parts[2]}_{parts[3]}.json").write_text(
                json.dumps(payload), encoding="utf-8"
            )
            path.unlink()
        store = DiskResultStore(tmp_path)
        # The legacy file has no evidence, so the weak query re-runs in full
        # only when asked tighter; re-running the weak query itself is a
        # containment hit — force a fresh sweep by clearing, then re-insert.
        store.clear()
        with AuditSession(dataset, ranking, store=store) as session:
            session.run(self.WEAK)
        names = sorted(path.stem for path in tmp_path.glob("*.json"))
        assert len(names) == 1 and len(names[0].split("_")) == 4
        # And the re-persisted (enriched) entry now anchors refinements.
        with AuditSession(dataset, ranking, store=DiskResultStore(tmp_path)) as session:
            refined = session.run(self.TIGHT)
        assert refined.stats.implication_hits == 1

    def test_enriched_same_range_insert_replaces_legacy_entry(self, tmp_path):
        """A same-range re-insert whose frontier was enriched (v4, evidence)
        replaces the legacy 3-part file instead of leaving both on disk."""
        dataset, ranking = _instance(89, 420, [3, 4, 2])
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, store=store) as session:
            session.run(self.WEAK)
        v4_names = {path.name for path in tmp_path.glob("*.json")}
        # Plant a legacy-named copy alongside (as an old process would have).
        for name in v4_names:
            parts = name[: -len(".json")].split("_")
            payload = (tmp_path / name).read_text(encoding="utf-8")
            (tmp_path / f"{parts[0]}_{parts[2]}_{parts[3]}.json").write_text(
                payload, encoding="utf-8"
            )
        assert len(list(tmp_path.glob("*.json"))) == 2 * len(v4_names)
        with AuditSession(dataset, ranking, store=store) as session:
            store.clear()
            session.run(self.WEAK)
        # Only the family-tagged names survive the re-insert's subsumption.
        assert {path.name for path in tmp_path.glob("*.json")} == v4_names

    def test_in_memory_refine_hit_counter(self):
        dataset, ranking = _instance(97, 420, [3, 4, 2])
        store = InMemoryResultStore()
        with AuditSession(dataset, ranking, store=store) as session:
            session.run(self.WEAK)
        with AuditSession(dataset, ranking, store=store) as session:
            session.run(self.TIGHT)
        assert store.refine_hits == 1
