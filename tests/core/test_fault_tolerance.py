"""End-to-end tests for the fault-tolerant execution supervisor.

Every test here drives a *deterministic* fault through the
:class:`~repro.core.engine.faults.FaultPlan` harness instead of relying on
real races.  The contract under test, in order of importance:

* a worker killed mid-sweep is respawned against the still-published shared
  dataset view and its shard re-dispatched, and the final result is
  bit-identical to the serial oracle (``worker_restarts == 1``, no
  session-wide degradation);
* hung workers are detected by the heartbeat watchdog and lost result
  messages by ``shard_timeout`` — both recover through the same respawn path;
* a briefly silent worker that still delivers is *not* restarted (the
  watchdog must not be trigger-happy);
* query deadlines raise :class:`~repro.exceptions.QueryTimeoutError` carrying
  the partial-progress stats, on both the serial and the parallel path, and
  leave the executor and session healthy;
* an exhausted restart budget opens the session's circuit breaker (serial
  service, ``degraded_queries``), and after the cooldown a probe restores a
  fresh executor (``executor_recoveries``);
* a batch interrupted mid-way leaves the executor healthy and the result
  store consistent;
* seeded chaos rounds: randomized query mixes under randomized fault plans
  stay bit-identical to the serial oracle with bounded restart counts, under
  both the fork and the spawn start method.

Set ``REPRO_CHAOS_ROUNDS`` to raise the chaos-round count (CI smoke uses a
higher value; the default keeps the tier-1 run fast).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.bounds import GlobalBoundSpec, ProportionalBoundSpec
from repro.core.engine.faults import (
    FaultAction,
    FaultPlan,
    HANG,
    KILL,
    STALL_HEARTBEATS,
    drop_result,
    hang_worker,
    kill_worker,
)
from repro.core.engine.parallel import ExecutionConfig
from repro.core.planner import query_group_key
from repro.core.result_store import DiskResultStore, InMemoryResultStore
from repro.core.session import AuditSession, DetectionQuery, detect_biased_groups
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import QueryTimeoutError
from repro.ranking.base import PrecomputedRanker

CHAOS_ROUNDS = int(os.environ.get("REPRO_CHAOS_ROUNDS", "2"))

START_METHODS = [
    method for method in ("fork", "spawn") if method in multiprocessing.get_all_start_methods()
]


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float = 1.0):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=weights,
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


def _oracle(dataset, ranking, query: DetectionQuery):
    """The serial, fault-free reference result for one query."""
    return detect_biased_groups(
        dataset, ranking, query.effective_bound(), query.tau_s, query.k_min,
        query.k_max, algorithm=query.resolved_algorithm(),
    ).result


def _recovery_config(fault_plan: FaultPlan, **overrides) -> ExecutionConfig:
    """A two-worker config with fast, test-friendly recovery timings."""
    settings = dict(
        workers=2,
        heartbeat_interval=0.05,
        heartbeat_timeout=5.0,
        retry_backoff=0.01,
        fault_plan=fault_plan,
    )
    settings.update(overrides)
    return ExecutionConfig(**settings)


# -- the acceptance scenario: kill one worker mid-sweep ------------------------------
class TestWorkerRespawn:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_kill_mid_sweep_is_bit_identical(self, start_method):
        """A worker killed partway through a sweep is respawned, its shard is
        re-dispatched, and the query result matches the serial oracle exactly —
        with no session-wide degradation."""
        dataset, ranking = _instance(211, 64, [2, 3, 2], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 40, "iter_td")
        reference = _oracle(dataset, ranking, query)
        plan = FaultPlan(actions=(kill_worker(0, at_task=2),))
        config = _recovery_config(plan, start_method=start_method)
        with AuditSession(dataset, ranking, execution=config,
                          result_cache_capacity=0) as session:
            first = session.run(query)
            assert first.result == reference
            assert first.stats.worker_restarts == 1
            assert first.stats.shard_retries == 1
            assert "executor_reattach" not in first.stats.extra
            assert "parallel_fallback" not in first.stats.extra
            assert not session.degraded
            assert session._executor is not None and session._executor.healthy
            # The restart budget is per-search: the next query starts clean and
            # the respawned worker (incarnation 1) is out of the fault's reach.
            second = session.run(query)
            assert second.result == reference
            assert second.stats.worker_restarts == 0

    def test_hung_worker_is_recovered_by_heartbeat_watchdog(self):
        """A worker that goes silent mid-task (alive but stuck) is declared
        hung once its heartbeats lapse, and the shard is re-run elsewhere."""
        dataset, ranking = _instance(223, 56, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        reference = _oracle(dataset, ranking, query)
        plan = FaultPlan(actions=(hang_worker(0, at_task=1, seconds=30.0),))
        config = _recovery_config(plan, heartbeat_timeout=0.3)
        with AuditSession(dataset, ranking, execution=config) as session:
            report = session.run(query)
        assert report.result == reference
        assert report.stats.worker_restarts == 1
        assert report.stats.heartbeat_timeouts == 1

    def test_dropped_result_is_recovered_by_shard_timeout(self):
        """A lost result message (worker finished the task but the ok never
        arrived) is caught by ``shard_timeout`` and the shard re-dispatched."""
        dataset, ranking = _instance(227, 56, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        reference = _oracle(dataset, ranking, query)
        plan = FaultPlan(actions=(drop_result(0, at_task=1),))
        config = _recovery_config(plan, shard_timeout=0.4)
        with AuditSession(dataset, ranking, execution=config) as session:
            report = session.run(query)
        assert report.result == reference
        assert report.stats.worker_restarts == 1
        assert report.stats.shard_retries == 1

    def test_brief_heartbeat_stall_does_not_restart(self):
        """Negative control: a worker silent for less than the heartbeat
        timeout that still delivers its result must NOT be restarted."""
        dataset, ranking = _instance(229, 56, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        reference = _oracle(dataset, ranking, query)
        plan = FaultPlan(
            actions=(FaultAction(STALL_HEARTBEATS, worker=0, at_task=1, seconds=0.2),)
        )
        config = _recovery_config(plan, heartbeat_timeout=2.0)
        with AuditSession(dataset, ranking, execution=config) as session:
            report = session.run(query)
        assert report.result == reference
        assert report.stats.worker_restarts == 0
        assert report.stats.heartbeat_timeouts == 0


# -- query deadlines -----------------------------------------------------------------
class TestQueryDeadline:
    def test_serial_deadline_raises_with_partial_stats(self):
        dataset, ranking = _instance(233, 56, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        config = ExecutionConfig(workers=1, query_deadline=1e-6)
        with AuditSession(dataset, ranking, execution=config) as session:
            with pytest.raises(QueryTimeoutError) as excinfo:
                session.run(query)
            stats = excinfo.value.stats
            assert stats is not None
            assert stats.query_deadline_exceeded == 1
            assert stats.elapsed_seconds > 0.0
            # A deadline is a per-query verdict, not a fault.
            assert not session.degraded
            assert not session.closed

    def test_parallel_deadline_keeps_executor_healthy(self):
        """A query stuck behind a hung worker times out at its deadline (before
        the lenient heartbeat watchdog fires) without poisoning the pool."""
        dataset, ranking = _instance(239, 56, [2, 3], 1.0)
        # A single-search sweep; on this instance its one shard lands on
        # worker 1, so that is the worker the hang must target — and the
        # retry fits comfortably inside the deadline once the hang elapses.
        query = DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 30)
        plan = FaultPlan(actions=(hang_worker(1, at_task=1, seconds=2.0),))
        config = _recovery_config(plan, heartbeat_timeout=30.0, query_deadline=0.5)
        with AuditSession(dataset, ranking, execution=config,
                          result_cache_capacity=0) as session:
            with pytest.raises(QueryTimeoutError) as excinfo:
                session.run(query)
            stats = excinfo.value.stats
            assert stats.query_deadline_exceeded == 1
            assert stats.worker_restarts == 0
            assert session._executor is not None and session._executor.healthy
            assert not session.degraded
            # Once the hang elapses the same pool serves the query in full
            # (every query gets the same 0.4 s deadline, so the retry must not
            # start while the worker is still sleeping).
            time.sleep(2.1)
            report = session.run(query)
            assert report.result == _oracle(dataset, ranking, query)
            assert report.stats.worker_restarts == 0


# -- circuit breaker: exhaustion, cooldown, probe ------------------------------------
class TestCircuitBreaker:
    def test_exhausted_restarts_degrade_then_probe_recovers(self):
        """A persistent fault burns the restart budget → serial service with
        ``degraded_queries``; after the cooldown a probe builds a fresh pool
        (``executor_recoveries``) that the pinned fault no longer reaches."""
        dataset, ranking = _instance(241, 56, [2, 3], 1.0)
        query = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30, "iter_td")
        reference = _oracle(dataset, ranking, query)
        # incarnation=None: the kill re-fires on every respawn of worker 0 —
        # but only on executor generation 0, so the probe pool is clean.
        plan = FaultPlan(
            actions=(FaultAction(KILL, worker=0, at_task=1, incarnation=None),)
        )
        config = _recovery_config(plan, max_worker_restarts=1, breaker_cooldown=0.4)
        with AuditSession(dataset, ranking, execution=config,
                          result_cache_capacity=0) as session:
            first = session.run(query)
            assert first.result == reference
            assert first.stats.extra.get("executor_reattach") == 1
            assert first.stats.degraded_queries == 1
            assert first.stats.worker_restarts == 1
            assert session.degraded
            assert session._executor is None
            # Within the cooldown: serial service, no probe spawned.
            second = session.run(query)
            assert second.result == reference
            assert second.stats.degraded_queries == 1
            assert "pool_spawns" not in second.stats.extra
            assert session._executor is None
            time.sleep(0.45)
            # Cooldown over: this query probes a fresh executor and recovers.
            third = session.run(query)
            assert third.result == reference
            assert third.stats.executor_recoveries == 1
            assert third.stats.worker_restarts == 0
            assert third.stats.degraded_queries == 0
            assert not session.degraded
            assert session._executor is not None and session._executor.healthy


# -- batch interruption --------------------------------------------------------------
class TestBatchInterruption:
    def test_run_many_interrupted_mid_batch_stays_consistent(self, tmp_path):
        """A deadline tripping on the batch's second step propagates, but the
        executor stays healthy and the disk store holds exactly the completed
        steps — no torn entries, and the retried batch is bit-identical."""
        dataset, ranking = _instance(251, 56, [2, 3], 1.0)
        queries = [
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30),
            DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 30),
            DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), 4, 2, 30),
        ]
        references = [_oracle(dataset, ranking, query) for query in queries]
        # Worker 0's second task belongs to the batch's second step (each
        # global-bounds/prop-bounds sweep is one search → one task per worker);
        # the hang outlives the query deadline, interrupting that step.
        plan = FaultPlan(actions=(hang_worker(0, at_task=2, seconds=2.0),))
        config = _recovery_config(plan, heartbeat_timeout=30.0, query_deadline=0.6)
        store = DiskResultStore(tmp_path)
        with AuditSession(dataset, ranking, execution=config, store=store,
                          result_cache_capacity=0) as session:
            with pytest.raises(QueryTimeoutError):
                session.run_many(queries)
            # Only the completed first step landed in the store, and every
            # persisted file is readable — no torn mid-batch writes.
            assert len(store) == 1
            assert store.quarantined_entries == 0
            assert list(tmp_path.glob("*.json.corrupt")) == []
            assert session._executor is not None and session._executor.healthy
            assert not session.degraded
            # The retried batch completes on the same pool, bit-identically —
            # after the hang has fully elapsed (the per-query deadline would
            # otherwise trip again behind the still-sleeping worker).
            time.sleep(2.1)
            reports = session.run_many(queries)
            assert [r.result for r in reports] == references
            assert sum(r.stats.worker_restarts for r in reports) == 0
            assert len(store) == len(queries)

    @pytest.mark.parametrize("algorithm", ["iter_td", "global_bounds", "prop_bounds"])
    def test_partial_reports_expose_exactly_the_completed_prefix(self, algorithm):
        """A mid-batch timeout's ``partial_reports`` is the serving layer's
        contract: completed queries carry full, oracle-identical reports in
        input order, unserved ones are ``None``, and the store holds exactly
        the completed steps — for every algorithm the interrupted step runs."""
        dataset, ranking = _instance(263, 56, [2, 3], 1.0)
        first = DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 30,
                               "global_bounds")
        if algorithm == "prop_bounds":
            second = DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 30,
                                    algorithm)
        elif algorithm == "global_bounds":
            # A different tau_s keeps step 2 out of step 1's containment
            # lattice: a same-tau threshold would be served by implication
            # refinement (or, if tighter, from the warm engine) without
            # dispatching a single worker task, and a fault that never fires
            # means no timeout to observe.
            second = DetectionQuery(GlobalBoundSpec(lower_bounds=1.0), 3, 2, 30,
                                    algorithm)
        else:
            second = DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), 2, 2, 30,
                                    algorithm)
        reference = _oracle(dataset, ranking, first)
        # Step 1 is a single covering search, so no worker sees more than one
        # task before step 2 begins; a worker's *second* task therefore always
        # belongs to the second step.  The fault is not pinned to a worker
        # index — the sweep may shard onto either worker — so whichever worker
        # reaches its second task hangs past the deadline and trips it.
        plan = FaultPlan(
            actions=(FaultAction(HANG, worker=None, at_task=2, seconds=2.0),)
        )
        config = _recovery_config(plan, heartbeat_timeout=30.0, query_deadline=0.6)
        store = InMemoryResultStore()
        with AuditSession(dataset, ranking, execution=config, store=store,
                          result_cache_capacity=0) as session:
            with pytest.raises(QueryTimeoutError) as excinfo:
                session.run_many([first, second])
        error = excinfo.value
        assert error.partial_reports is not None
        completed, unserved = error.partial_reports
        assert unserved is None
        assert completed.result == reference
        assert completed.query == first
        # Partial-progress stats travel with the error too.
        assert error.stats is not None
        assert error.stats.query_deadline_exceeded == 1
        # The store retains exactly the completed step's sweep: the first
        # query's group is covered, the interrupted one's is not.
        fingerprint = dataset.fingerprint()
        assert store.coverage(fingerprint, query_group_key(first)) != ()
        assert store.coverage(fingerprint, query_group_key(second)) == ()


# -- seeded chaos vs the serial oracle -----------------------------------------------
class TestSeededChaos:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("round_index", range(CHAOS_ROUNDS))
    def test_chaos_round_matches_serial_oracle(self, start_method, round_index):
        """Randomized (but seeded) query mixes under randomized fault plans:
        every report must match the fault-free serial oracle bit-for-bit, and
        the restart count is bounded by the number of scheduled one-shot
        faults.  At least one ``at_task=1`` kill is always armed, so every
        round genuinely exercises the respawn path."""
        seed = 300 + 10 * round_index + (0 if start_method == "fork" else 5)
        rng = np.random.default_rng(seed)
        dataset, ranking = _instance(seed, 48 + int(rng.integers(0, 16)), [2, 3], 1.0)
        k_max = int(rng.integers(20, 35))
        pool = [
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, k_max, "iter_td"),
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, k_max, "global_bounds"),
            DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, k_max),
            DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), 4, 2, k_max, "iter_td"),
        ]
        picks = sorted(rng.choice(len(pool), size=int(rng.integers(2, 4)), replace=False))
        queries = [pool[i] for i in picks]
        references = [_oracle(dataset, ranking, query) for query in queries]
        # Every action is one-shot (pinned incarnation), so each fires at most
        # once and each firing costs at most one restart.
        actions = [kill_worker(int(rng.integers(0, 2)), at_task=1)]
        if rng.random() < 0.5:
            actions.append(drop_result(int(rng.integers(0, 2)), at_task=2))
        if rng.random() < 0.5:
            actions.append(
                FaultAction(
                    STALL_HEARTBEATS,
                    worker=int(rng.integers(0, 2)),
                    at_task=int(rng.integers(2, 4)),
                    seconds=0.1,
                )
            )
        plan = FaultPlan(actions=tuple(actions))
        config = _recovery_config(
            plan,
            start_method=start_method,
            heartbeat_timeout=5.0,
            shard_timeout=2.0,
            max_worker_restarts=4,
        )
        with AuditSession(dataset, ranking, execution=config,
                          result_cache_capacity=0) as session:
            reports = session.run_many(queries)
        assert [r.result for r in reports] == references
        restarts = sum(r.stats.worker_restarts for r in reports)
        assert 1 <= restarts <= len(actions)
        assert all("executor_reattach" not in r.stats.extra for r in reports)
        assert all("parallel_fallback" not in r.stats.extra for r in reports)
