"""Tests for the query planner, the result cache and planner-served sessions.

The contract under test, in order of importance:

* **bit-identity** — a planner-served ``run_many`` batch (duplicates, nested and
  overlapping k ranges, shared ``tau_s``) returns exactly what a fresh cold
  per-query loop returns, for all three algorithms, serial and ``workers=2``,
  including on randomized query mixes;
* **strictly less work** — the acceptance criterion: a 12-query mixed batch
  performs strictly fewer root searches and engine batch evaluations than the
  per-query loop;
* **planning** — canonicalization (auto resolution, structural bound equality),
  exact-repeat dedupe, overlap/nest/adjacency merging (and *no* merging across
  gaps, bounds, ``tau_s`` or algorithms), deterministic ``tau_s`` step order;
* **result cache** — containment hits, subsumption on insert, LRU eviction,
  fingerprint keying, stats accounting on served reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import (
    BoundSpec,
    GlobalBoundSpec,
    ProportionalBoundSpec,
    step_lower_bounds,
)
from repro.core.engine.parallel import ExecutionConfig
from repro.core.planner import (
    DetectionQuery,
    ExtendStep,
    ResultCache,
    bound_key,
    canonical_query_key,
    plan_queries,
    query_group_key,
)
from repro.core.result_set import DetectionResult
from repro.core.top_down import SweepFrontier
from repro.core.session import AuditSession, detect_biased_groups
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.ranking.base import PrecomputedRanker


def _instance(seed: int, n_rows: int, cardinalities: list[int], skew: float = 1.0):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(-1.5, 1.5, size=len(cardinalities)).tolist()
    spec = SyntheticSpec(
        n_rows=n_rows,
        cardinalities=cardinalities,
        score_weights=weights,
        noise=0.4,
        skew=skew,
        seed=seed,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


STEP = GlobalBoundSpec(lower_bounds=step_lower_bounds({1: 1.0, 10: 3.0, 30: 6.0}))
FLAT = GlobalBoundSpec(lower_bounds=2.0)
PROP = ProportionalBoundSpec(alpha=0.9)


def _cold_loop(dataset, ranking, queries, execution=None):
    """The reference: one isolated one-shot call per query, in order."""
    return [
        detect_biased_groups(
            dataset, ranking, q.bound, q.tau_s, q.k_min, q.k_max,
            algorithm=q.algorithm, execution=execution,
        )
        for q in queries
    ]


def _assert_reports_bit_identical(planned, cold, queries):
    assert len(planned) == len(cold) == len(queries)
    for query, warm_report, cold_report in zip(queries, planned, cold):
        assert warm_report.result == cold_report.result
        assert warm_report.query is query
        assert warm_report.algorithm == cold_report.algorithm
        assert warm_report.parameters.k_min == query.k_min
        assert warm_report.parameters.k_max == query.k_max
        assert warm_report.parameters.tau_s == query.tau_s
        assert tuple(warm_report.result.k_values) == tuple(
            range(query.k_min, query.k_max + 1)
        )


# -- canonicalization -----------------------------------------------------------------
class TestCanonicalization:
    def test_structurally_equal_bounds_share_keys(self):
        assert bound_key(GlobalBoundSpec(lower_bounds=2.0)) == bound_key(
            GlobalBoundSpec(lower_bounds=2.0)
        )
        assert bound_key(ProportionalBoundSpec(alpha=0.8)) == bound_key(
            ProportionalBoundSpec(alpha=0.8)
        )
        schedule = {10: 10.0, 20: 20.0}
        assert bound_key(GlobalBoundSpec(lower_bounds=dict(schedule))) == bound_key(
            GlobalBoundSpec(lower_bounds=dict(schedule))
        )

    def test_different_bounds_have_different_keys(self):
        assert bound_key(GlobalBoundSpec(lower_bounds=2.0)) != bound_key(
            GlobalBoundSpec(lower_bounds=3.0)
        )
        assert bound_key(ProportionalBoundSpec(alpha=0.8)) != bound_key(
            ProportionalBoundSpec(alpha=0.9)
        )
        assert bound_key(FLAT) != bound_key(PROP)

    def test_callable_and_custom_bounds_key_by_identity(self):
        lower = lambda k: float(k)  # noqa: E731
        same = GlobalBoundSpec(lower_bounds=lower)
        also_same = GlobalBoundSpec(lower_bounds=lower)
        other = GlobalBoundSpec(lower_bounds=lambda k: float(k))
        assert bound_key(same) == bound_key(also_same)
        assert bound_key(same) != bound_key(other)

        class CustomBound(BoundSpec):
            def lower(self, k, size_in_data, dataset_size):
                return 1.0

        custom = CustomBound()
        assert bound_key(custom) == bound_key(custom)
        assert bound_key(custom) != bound_key(CustomBound())

    def test_auto_and_explicit_algorithm_dedupe(self):
        auto = DetectionQuery(FLAT, 2, 2, 20)
        explicit = DetectionQuery(FLAT, 2, 2, 20, "global_bounds")
        assert canonical_query_key(auto) == canonical_query_key(explicit)
        baseline = DetectionQuery(FLAT, 2, 2, 20, "iter_td")
        assert canonical_query_key(auto) != canonical_query_key(baseline)

    def test_group_key_ignores_k_range_only(self):
        a = DetectionQuery(FLAT, 2, 2, 20)
        b = DetectionQuery(FLAT, 2, 5, 40)
        assert query_group_key(a) == query_group_key(b)
        assert canonical_query_key(a) != canonical_query_key(b)
        assert query_group_key(a) != query_group_key(DetectionQuery(FLAT, 3, 2, 20))


# -- planning -------------------------------------------------------------------------
class TestPlanQueries:
    def test_exact_duplicates_collapse_into_one_step(self):
        queries = [DetectionQuery(FLAT, 2, 2, 20)] * 3
        plan = plan_queries(queries)
        assert plan.n_steps == 1
        assert plan.steps[0].serves == (0, 1, 2)
        assert plan.deduped_queries == 2
        assert plan.merged_ranges == 0

    def test_overlapping_and_nested_ranges_merge(self):
        queries = [
            DetectionQuery(FLAT, 2, 2, 20),
            DetectionQuery(FLAT, 2, 10, 40),  # overlaps
            DetectionQuery(FLAT, 2, 5, 15),   # nested
        ]
        plan = plan_queries(queries)
        assert plan.n_steps == 1
        step = plan.steps[0]
        assert (step.query.k_min, step.query.k_max) == (2, 40)
        assert step.serves == (0, 1, 2)
        assert plan.merged_ranges == 2

    def test_adjacent_ranges_merge_but_gaps_do_not(self):
        adjacent = plan_queries([
            DetectionQuery(FLAT, 2, 2, 20),
            DetectionQuery(FLAT, 2, 21, 40),
        ])
        assert adjacent.n_steps == 1
        assert (adjacent.steps[0].query.k_min, adjacent.steps[0].query.k_max) == (2, 40)

        gapped = plan_queries([
            DetectionQuery(FLAT, 2, 2, 20),
            DetectionQuery(FLAT, 2, 30, 40),
        ])
        assert gapped.n_steps == 2
        # A step never computes a k no input asked for.
        ranges = sorted((s.query.k_min, s.query.k_max) for s in gapped.steps)
        assert ranges == [(2, 20), (30, 40)]

    def test_no_merge_across_bound_tau_or_algorithm(self):
        queries = [
            DetectionQuery(FLAT, 2, 2, 20),
            DetectionQuery(GlobalBoundSpec(lower_bounds=3.0), 2, 2, 20),  # other bound
            DetectionQuery(FLAT, 3, 2, 20),                                # other tau_s
            DetectionQuery(FLAT, 2, 2, 20, "iter_td"),                     # other algorithm
        ]
        plan = plan_queries(queries)
        assert plan.n_steps == 4
        assert plan.deduped_queries == 0 and plan.merged_ranges == 0

    def test_steps_ordered_by_tau_s_then_first_appearance(self):
        queries = [
            DetectionQuery(FLAT, 5, 2, 20),
            DetectionQuery(PROP, 2, 2, 20),
            DetectionQuery(STEP, 5, 2, 20, "iter_td"),
            DetectionQuery(FLAT, 2, 2, 20),
        ]
        plan = plan_queries(queries)
        assert [s.query.tau_s for s in plan.steps] == [2, 2, 5, 5]
        # Ties broken by first appearance in the batch.
        assert [s.primary_index for s in plan.steps] == [1, 3, 0, 2]

    def test_every_index_served_exactly_once(self):
        queries = [
            DetectionQuery(FLAT, 2, 2, 20),
            DetectionQuery(FLAT, 2, 2, 20),
            DetectionQuery(PROP, 4, 5, 30),
            DetectionQuery(FLAT, 2, 10, 25),
            DetectionQuery(STEP, 2, 2, 40, "iter_td"),
        ]
        plan = plan_queries(queries)
        served = sorted(index for step in plan.steps for index in step.serves)
        assert served == list(range(len(queries)))
        assert sorted(plan.step_of) == list(range(len(queries)))

    def test_empty_batch(self):
        plan = plan_queries([])
        assert plan.n_steps == 0 and plan.n_queries == 0

    def test_describe_mentions_savings(self):
        plan = plan_queries([DetectionQuery(FLAT, 2, 2, 20)] * 2)
        text = plan.describe()
        assert "2 queries -> 1 steps" in text and "1 deduped" in text


# -- partial-hit (extension) planning -------------------------------------------------
class TestExtendPlanning:
    GROUP = query_group_key(DetectionQuery(FLAT, 2, 2, 20))

    @staticmethod
    def _coverage(ranges_by_group):
        return lambda group_key: ranges_by_group.get(group_key, ())

    def test_partial_overlap_plans_an_extend_step(self):
        coverage = self._coverage({self.GROUP: [(2, 20)]})
        plan = plan_queries([DetectionQuery(FLAT, 2, 5, 40)], coverage=coverage)
        assert plan.n_steps == 1
        step = plan.steps[0]
        assert isinstance(step, ExtendStep)
        assert (step.base_k_min, step.base_k_max) == (2, 20)
        assert step.suffix_k_values == 20
        assert plan.extension_steps == 1
        assert "extends cached [2, 20]" in plan.describe()

    def test_adjacent_cached_range_extends_but_gap_does_not(self):
        adjacent = plan_queries(
            [DetectionQuery(FLAT, 2, 21, 40)],
            coverage=self._coverage({self.GROUP: [(2, 20)]}),
        )
        assert isinstance(adjacent.steps[0], ExtendStep)
        gapped = plan_queries(
            [DetectionQuery(FLAT, 2, 25, 40)],
            coverage=self._coverage({self.GROUP: [(2, 20)]}),
        )
        assert not isinstance(gapped.steps[0], ExtendStep)

    def test_contained_range_is_not_planned_as_extension(self):
        # A cached sweep that already contains the step is a containment hit at
        # execution time; planning an extension would be wasted work.
        plan = plan_queries(
            [DetectionQuery(FLAT, 2, 5, 15)],
            coverage=self._coverage({self.GROUP: [(2, 20)]}),
        )
        assert not isinstance(plan.steps[0], ExtendStep)

    def test_cached_range_starting_too_late_extends_two_sided(self):
        # A base starting past the asked k_min still seeds a two-sided
        # extension: the prefix is a bounded cold re-run, the suffix a
        # frontier resume.
        plan = plan_queries(
            [DetectionQuery(FLAT, 2, 2, 40)],
            coverage=self._coverage({self.GROUP: [(5, 20)]}),
        )
        step = plan.steps[0]
        assert isinstance(step, ExtendStep)
        assert (step.base_k_min, step.base_k_max) == (5, 20)
        assert step.prefix_k_values == 3
        assert step.suffix_k_values == 20

    def test_prefix_adjacent_base_does_not_extend(self):
        # A prefix-side base must actually overlap the asked range — otherwise
        # the bounded re-run would recompute everything the query asks for.
        plan = plan_queries(
            [DetectionQuery(FLAT, 2, 2, 20)],
            coverage=self._coverage({self.GROUP: [(21, 40)]}),
        )
        assert not isinstance(plan.steps[0], ExtendStep)

    def test_latest_ending_base_wins(self):
        plan = plan_queries(
            [DetectionQuery(FLAT, 2, 2, 40)],
            coverage=self._coverage({self.GROUP: [(2, 10), (2, 25), (2, 18)]}),
        )
        step = plan.steps[0]
        assert isinstance(step, ExtendStep) and step.base_k_max == 25

    def test_merged_ranges_extend_as_one_step(self):
        coverage = self._coverage({self.GROUP: [(2, 20)]})
        plan = plan_queries(
            [DetectionQuery(FLAT, 2, 5, 30), DetectionQuery(FLAT, 2, 25, 45)],
            coverage=coverage,
        )
        assert plan.n_steps == 1
        step = plan.steps[0]
        assert isinstance(step, ExtendStep)
        assert (step.query.k_min, step.query.k_max) == (5, 45)
        assert step.serves == (0, 1)


# -- upper-bound queries through the planner ------------------------------------------
class TestUpperBoundQueries:
    def test_beta_levels_group_and_dedupe(self):
        base = ProportionalBoundSpec(alpha=0.9)
        q_a = DetectionQuery(base, 2, 2, 20, "upper_bounds", beta=1.8)
        q_b = DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 20, "upper_bounds", beta=1.8)
        q_c = DetectionQuery(base, 2, 2, 20, "upper_bounds", beta=2.5)
        assert canonical_query_key(q_a) == canonical_query_key(q_b)
        assert canonical_query_key(q_a) != canonical_query_key(q_c)
        plan = plan_queries([q_a, q_b, q_c])
        assert plan.n_steps == 2 and plan.deduped_queries == 1

    def test_beta_field_equals_baked_in_level(self):
        # The canonical form (beta on the query) and an ad-hoc bound object with
        # the level baked in describe the same audit, so they share a group.
        via_beta = DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 20,
                                  "upper_bounds", beta=1.8)
        baked_in = DetectionQuery(ProportionalBoundSpec(alpha=0.9, beta=1.8), 2, 2, 20,
                                  "upper_bounds")
        assert canonical_query_key(via_beta) == canonical_query_key(baked_in)

    def test_upper_bound_k_ranges_merge(self):
        bound = ProportionalBoundSpec(alpha=0.9)
        plan = plan_queries([
            DetectionQuery(bound, 2, 2, 20, "upper_bounds", beta=1.8),
            DetectionQuery(bound, 2, 10, 35, "upper_bounds", beta=1.8),
        ])
        assert plan.n_steps == 1
        assert (plan.steps[0].query.k_min, plan.steps[0].query.k_max) == (2, 35)

    def test_upper_bounds_query_requires_an_upper_level(self):
        with pytest.raises(ValueError):
            DetectionQuery(ProportionalBoundSpec(alpha=0.9), 2, 2, 20, "upper_bounds")
        with pytest.raises(ValueError):
            DetectionQuery(GlobalBoundSpec(lower_bounds=2.0), 2, 2, 20, "upper_bounds")

    def test_auto_never_resolves_to_upper_bounds(self):
        query = DetectionQuery(ProportionalBoundSpec(alpha=0.9, beta=1.8), 2, 2, 20)
        assert query.resolved_algorithm() == "prop_bounds"


# -- the result store (in-memory LRU backend) -----------------------------------------
class TestResultCache:
    KEY = query_group_key(DetectionQuery(FLAT, 2, 2, 20))
    FP = "fp"

    @staticmethod
    def _result(k_min: int, k_max: int) -> DetectionResult:
        return DetectionResult({k: frozenset() for k in range(k_min, k_max + 1)})

    def test_containment_hit_and_miss(self):
        cache = ResultCache()
        assert cache.lookup(self.FP, self.KEY, 2, 20) is None
        cache.insert(self.FP, self.KEY, DetectionQuery(FLAT, 2, 2, 20), self._result(2, 20))
        assert cache.lookup(self.FP, self.KEY, 2, 20) is not None     # exact
        assert cache.lookup(self.FP, self.KEY, 5, 15) is not None     # nested
        assert cache.lookup(self.FP, self.KEY, 2, 21) is None         # wider
        assert cache.lookup(self.FP, ("other",), 2, 20) is None       # other group
        assert cache.lookup("other-fp", self.KEY, 2, 20) is None      # other dataset
        assert cache.hits == 2 and cache.misses == 4
        assert cache.insertions == 1

    def test_wider_insert_subsumes_narrower_entries(self):
        cache = ResultCache()
        cache.insert(self.FP, self.KEY, DetectionQuery(FLAT, 2, 5, 15), self._result(5, 15))
        cache.insert(self.FP, self.KEY, DetectionQuery(FLAT, 2, 2, 20), self._result(2, 20))
        assert len(cache) == 1
        assert cache.lookup(self.FP, self.KEY, 5, 15).covers(2, 20)

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        other = query_group_key(DetectionQuery(FLAT, 3, 2, 20))
        third = query_group_key(DetectionQuery(FLAT, 4, 2, 20))
        cache.insert(self.FP, self.KEY, DetectionQuery(FLAT, 2, 2, 20), self._result(2, 20))
        cache.insert(self.FP, other, DetectionQuery(FLAT, 3, 2, 20), self._result(2, 20))
        assert cache.lookup(self.FP, self.KEY, 2, 20) is not None  # refresh the first
        cache.insert(self.FP, third, DetectionQuery(FLAT, 4, 2, 20), self._result(2, 20))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup(self.FP, other, 2, 20) is None         # the LRU entry went
        assert cache.lookup(self.FP, self.KEY, 2, 20) is not None  # the refreshed stayed

    def test_capacity_zero_disables_storage(self):
        cache = ResultCache(capacity=0)
        cache.insert(self.FP, self.KEY, DetectionQuery(FLAT, 2, 2, 20), self._result(2, 20))
        assert len(cache) == 0
        assert cache.lookup(self.FP, self.KEY, 2, 20) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_extendable_prefers_latest_ending_frontier_base(self):
        cache = ResultCache()
        short = DetectionQuery(FLAT, 2, 2, 10)
        longer = DetectionQuery(FLAT, 2, 2, 20)
        frontier = SweepFrontier(algorithm="global_bounds", k=10)
        cache.insert(self.FP, self.KEY, short, self._result(2, 10), frontier)
        cache.insert(
            self.FP, ("other",), DetectionQuery(FLAT, 3, 2, 30), self._result(2, 30),
            SweepFrontier(algorithm="global_bounds", k=30),
        )
        entry = cache.extendable(self.FP, self.KEY, 2, 40)
        assert entry is not None and entry.k_max == 10
        assert cache.partial_hits == 1
        wider_frontier = SweepFrontier(algorithm="global_bounds", k=20)
        cache.insert(self.FP, self.KEY, longer, self._result(2, 20), wider_frontier)
        entry = cache.extendable(self.FP, self.KEY, 2, 40)
        assert entry is not None and entry.k_max == 20
        # No base qualifies when the asked range starts past the cached end + 1
        # (a gap would be bridged) or is already contained.
        assert cache.extendable(self.FP, self.KEY, 25, 40) is None
        assert cache.extendable(self.FP, self.KEY, 5, 15) is None

    def test_frontierless_entries_never_offered_for_extension(self):
        cache = ResultCache()
        cache.insert(self.FP, self.KEY, DetectionQuery(FLAT, 2, 2, 10), self._result(2, 10))
        assert cache.extendable(self.FP, self.KEY, 2, 40) is None
        assert cache.coverage(self.FP, self.KEY) == ()


# -- planner-served sessions ----------------------------------------------------------
def _acceptance_batch(k_max: int) -> list[DetectionQuery]:
    """The 12-query mixed batch of the acceptance criterion: exact duplicates,
    nested and overlapping k ranges, shared tau_s across bounds."""
    return [
        DetectionQuery(STEP, 2, 2, k_max, algorithm="iter_td"),
        DetectionQuery(STEP, 2, 5, 20, algorithm="iter_td"),        # nested
        DetectionQuery(STEP, 2, 10, k_max, algorithm="iter_td"),    # overlapping
        DetectionQuery(STEP, 2, 2, k_max, algorithm="iter_td"),     # exact duplicate
        DetectionQuery(FLAT, 2, 2, 30),
        DetectionQuery(FLAT, 2, 2, 30, algorithm="global_bounds"),  # duplicate via auto
        DetectionQuery(FLAT, 2, 10, k_max),                         # overlapping
        DetectionQuery(PROP, 2, 2, k_max),
        DetectionQuery(PROP, 2, 5, 25),                             # nested
        DetectionQuery(PROP, 4, 2, 30),                             # same bound, other tau_s
        DetectionQuery(FLAT, 4, 2, 30),                             # shared tau_s with above
        DetectionQuery(PROP, 2, 2, k_max, algorithm="prop_bounds"), # duplicate via auto
    ]


EXECUTIONS = [
    pytest.param(None, id="serial"),
    pytest.param(ExecutionConfig(workers=2), id="workers2"),
]


class TestPlannerServedSession:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_acceptance_twelve_query_batch(self, execution):
        """The PR's acceptance criterion, end to end: strictly fewer root
        searches and batch evaluations than the cold loop, bit-identical."""
        dataset, ranking = _instance(211, 64, [2, 3, 2], 0.9)
        queries = _acceptance_batch(63)
        assert len(queries) == 12
        cold = _cold_loop(dataset, ranking, queries)
        with AuditSession(dataset, ranking, execution=execution) as session:
            planned = session.run_many(queries)
        _assert_reports_bit_identical(planned, cold, queries)

        planned_searches = sum(r.stats.full_searches for r in planned)
        cold_searches = sum(r.stats.full_searches for r in cold)
        planned_batches = sum(r.stats.batch_evaluations for r in planned)
        cold_batches = sum(r.stats.batch_evaluations for r in cold)
        assert planned_searches < cold_searches
        assert planned_batches < cold_batches
        # The provenance counters account for every saved execution.
        assert sum(r.stats.result_cache_hits for r in planned) >= 6
        assert sum(r.stats.plan_merged_queries for r in planned) >= 6
        assert sum(r.stats.result_cache_misses for r in planned) == 5

    def test_cache_serves_across_batches_and_sessions_do_not_share(self):
        dataset, ranking = _instance(223, 56, [2, 2, 3], 1.1)
        wide = DetectionQuery(STEP, 2, 2, 50, algorithm="iter_td")
        narrow = DetectionQuery(STEP, 2, 10, 30, algorithm="iter_td")
        with AuditSession(dataset, ranking) as session:
            first = session.run(wide)
            second = session.run(narrow)
            assert first.stats.result_cache_misses == 1
            assert second.stats.result_cache_hits == 1
            assert second.stats.full_searches == 0
            assert session.result_cache.hits == 1
        cold = detect_biased_groups(
            dataset, ranking, narrow.bound, narrow.tau_s, narrow.k_min, narrow.k_max,
            algorithm=narrow.algorithm,
        )
        assert second.result == cold.result
        # A fresh session starts cold: no state leaks between sessions.
        with AuditSession(dataset, ranking) as session:
            again = session.run(narrow)
            assert again.stats.result_cache_misses == 1

    def test_restricted_reports_support_detailed_groups(self):
        dataset, ranking = _instance(227, 48, [2, 3], 1.0)
        with AuditSession(dataset, ranking) as session:
            wide = session.run(DetectionQuery(FLAT, 2, 2, 40))
            narrow = session.run(DetectionQuery(FLAT, 2, 10, 20))
        assert narrow.stats.result_cache_hits == 1
        for k in (10, 15, 20):
            detailed = narrow.detailed_groups(k)
            assert {group.pattern for group in detailed} == narrow.groups_at(k)
            assert wide.groups_at(k) == narrow.groups_at(k)

    def test_engine_counter_sums_still_match_actual_work(self):
        """Per-query stats isolation survives the planner: summing engine
        counters over a batch's reports equals the engine's cumulative delta."""
        dataset, ranking = _instance(229, 56, [2, 3], 1.0)
        queries = _acceptance_batch(55)
        with AuditSession(dataset, ranking) as session:
            reports = session.run_many(queries)
            cumulative = session.counter.stats_snapshot()
        assert cumulative["batch_evaluations"] == sum(
            r.stats.batch_evaluations for r in reports
        )
        assert session.queries_run == len(queries)

    @pytest.mark.parametrize("execution", EXECUTIONS)
    @pytest.mark.parametrize("seed", [3001, 3002, 3003])
    def test_randomized_query_mix_bit_identical(self, execution, seed):
        """Randomized mixes over all three algorithms: planner-served run_many
        must equal a fresh per-query cold loop, serial and workers=2."""
        rng = np.random.default_rng(seed)
        dataset, ranking = _instance(seed, 48, [2, 3, 2], float(rng.uniform(0.7, 1.3)))
        bounds: list[BoundSpec] = [STEP, FLAT, PROP, ProportionalBoundSpec(alpha=0.7)]
        algorithms = ["auto", "iter_td", "global_bounds", "prop_bounds"]
        queries = []
        for _ in range(10):
            bound = bounds[rng.integers(len(bounds))]
            algorithm = algorithms[rng.integers(len(algorithms))]
            if algorithm == "global_bounds" and bound.pattern_dependent:
                algorithm = "prop_bounds"
            k_min = int(rng.integers(2, 20))
            k_max = int(rng.integers(k_min, 47))
            tau_s = int(rng.choice([2, 3, 4]))
            queries.append(DetectionQuery(bound, tau_s, k_min, k_max, algorithm))
            if rng.random() < 0.3:  # sprinkle exact duplicates
                queries.append(queries[-1])
        cold = _cold_loop(dataset, ranking, queries)
        with AuditSession(dataset, ranking, execution=execution) as session:
            planned = session.run_many(queries)
        _assert_reports_bit_identical(planned, cold, queries)

    def test_plan_merged_sweep_equals_separate_runs_without_cache(self):
        """Merging alone (cache disabled) must already be bit-identical."""
        dataset, ranking = _instance(233, 48, [2, 3], 1.0)
        queries = [
            DetectionQuery(PROP, 2, 2, 30),
            DetectionQuery(PROP, 2, 10, 45),
            DetectionQuery(PROP, 2, 5, 12),
        ]
        cold = _cold_loop(dataset, ranking, queries)
        with AuditSession(dataset, ranking, result_cache_capacity=0) as session:
            planned = session.run_many(queries)
        _assert_reports_bit_identical(planned, cold, queries)
        # One covering sweep executed; with the cache off the other two queries
        # are still served from the in-plan step, not recomputed.
        assert sum(r.stats.full_searches for r in planned) == sum(
            r.stats.full_searches for r in cold[:1]
        )
