"""Tests for repro.core.pattern."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pattern import EMPTY_PATTERN, Pattern
from repro.exceptions import DetectionError


class TestBasics:
    def test_mapping_protocol(self):
        pattern = Pattern({"school": "GP", "gender": "F"})
        assert len(pattern) == 2
        assert pattern["school"] == "GP"
        assert "gender" in pattern
        assert set(pattern) == {"school", "gender"}
        assert dict(pattern) == {"school": "GP", "gender": "F"}

    def test_equality_is_order_independent(self):
        assert Pattern({"a": 1, "b": 2}) == Pattern({"b": 2, "a": 1})
        assert hash(Pattern({"a": 1, "b": 2})) == hash(Pattern({"b": 2, "a": 1}))
        assert Pattern({"a": 1}) != Pattern({"a": 2})

    def test_equality_with_plain_mapping(self):
        assert Pattern({"a": 1}) == {"a": 1}

    def test_kwargs_constructor(self):
        assert Pattern(school="GP") == Pattern({"school": "GP"})
        with pytest.raises(DetectionError):
            Pattern({"school": "GP"}, school="MS")

    def test_empty_pattern(self):
        assert EMPTY_PATTERN.is_empty()
        assert len(EMPTY_PATTERN) == 0
        assert EMPTY_PATTERN.describe() == "(all tuples)"

    def test_describe_and_repr(self):
        pattern = Pattern({"b": 2, "a": 1})
        assert pattern.describe() == "a=1, b=2"
        assert "a=1" in repr(pattern)


class TestAlgebra:
    def test_extend_and_without(self):
        pattern = Pattern({"a": 1})
        child = pattern.extend("b", 2)
        assert child == Pattern({"a": 1, "b": 2})
        assert child.without("b") == pattern
        with pytest.raises(DetectionError):
            pattern.extend("a", 5)
        with pytest.raises(DetectionError):
            pattern.without("z")

    def test_subset_relations(self):
        general = Pattern({"a": 1})
        specific = Pattern({"a": 1, "b": 2})
        assert general.is_subset_of(specific)
        assert general.is_proper_subset_of(specific)
        assert specific.is_superset_of(general)
        assert not specific.is_subset_of(general)
        assert general.is_subset_of(general)
        assert not general.is_proper_subset_of(general)
        assert not Pattern({"a": 2}).is_subset_of(specific)

    def test_empty_pattern_is_subset_of_everything(self):
        assert EMPTY_PATTERN.is_subset_of(Pattern({"x": 0}))

    def test_union(self):
        assert Pattern({"a": 1}).union(Pattern({"b": 2})) == Pattern({"a": 1, "b": 2})
        assert Pattern({"a": 1}).union(Pattern({"a": 1})) == Pattern({"a": 1})
        with pytest.raises(DetectionError):
            Pattern({"a": 1}).union(Pattern({"a": 2}))

    def test_parents(self):
        pattern = Pattern({"a": 1, "b": 2})
        assert set(pattern.parents()) == {Pattern({"a": 1}), Pattern({"b": 2})}
        assert EMPTY_PATTERN.parents() == []

    def test_attributes(self):
        assert Pattern({"a": 1, "b": 2}).attributes == frozenset({"a", "b"})


_assignments = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d"]),
    values=st.integers(min_value=0, max_value=3),
    max_size=4,
)


class TestProperties:
    @given(first=_assignments, second=_assignments)
    @settings(max_examples=80, deadline=None)
    def test_subset_matches_dict_subset(self, first, second):
        """Pattern subsumption coincides with dictionary item inclusion."""
        p, q = Pattern(first), Pattern(second)
        assert p.is_subset_of(q) == (set(first.items()) <= set(second.items()))

    @given(assignment=_assignments)
    @settings(max_examples=50, deadline=None)
    def test_parents_are_proper_subsets(self, assignment):
        pattern = Pattern(assignment)
        for parent in pattern.parents():
            assert parent.is_proper_subset_of(pattern)
            assert len(parent) == len(pattern) - 1
