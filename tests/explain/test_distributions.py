"""Tests for repro.explain.distributions."""

from __future__ import annotations

import pytest

from repro.core.pattern import Pattern
from repro.exceptions import ExplanationError
from repro.explain.distributions import compare_distributions


class TestCompareDistributions:
    def test_toy_gender_distribution(self, toy_dataset, toy_ranking):
        """Top-5 of Figure 1 has 2 F / 3 M; the {School=GP} group has 4 F / 4 M."""
        comparison = compare_distributions(
            toy_dataset, toy_ranking, Pattern({"School": "GP"}), "Gender", k=5
        )
        assert comparison.top_k_proportions["F"] == pytest.approx(2 / 5)
        assert comparison.top_k_proportions["M"] == pytest.approx(3 / 5)
        assert comparison.group_proportions["F"] == pytest.approx(0.5)
        assert comparison.group_proportions["M"] == pytest.approx(0.5)

    def test_proportions_sum_to_one(self, toy_dataset, toy_ranking):
        comparison = compare_distributions(
            toy_dataset, toy_ranking, Pattern({"Gender": "F"}), "Failures", k=6
        )
        assert sum(comparison.top_k_proportions.values()) == pytest.approx(1.0)
        assert sum(comparison.group_proportions.values()) == pytest.approx(1.0)
        assert set(comparison.values) == {0, 1, 2}

    def test_total_variation_distance(self, toy_dataset, toy_ranking):
        identical = compare_distributions(
            toy_dataset, toy_ranking, Pattern({}), "Gender", k=16
        )
        assert identical.total_variation_distance() == pytest.approx(0.0)
        skewed = compare_distributions(
            toy_dataset, toy_ranking, Pattern({"School": "GP"}), "School", k=5
        )
        # Top-5 is 80% MS while the group is 100% GP.
        assert skewed.total_variation_distance() == pytest.approx(0.8)

    def test_largest_gap(self, toy_dataset, toy_ranking):
        comparison = compare_distributions(
            toy_dataset, toy_ranking, Pattern({"School": "GP"}), "School", k=5
        )
        value, gap = comparison.largest_gap()
        assert value in {"GP", "MS"}
        assert abs(gap) == pytest.approx(0.8)

    def test_describe(self, toy_dataset, toy_ranking):
        comparison = compare_distributions(
            toy_dataset, toy_ranking, Pattern({"School": "GP"}), "Gender", k=5
        )
        text = comparison.describe()
        assert "Gender" in text and "top-5" in text

    def test_validation(self, toy_dataset, toy_ranking):
        with pytest.raises(ExplanationError):
            compare_distributions(toy_dataset, toy_ranking, Pattern({"School": "GP"}), "Grade", k=5)
        with pytest.raises(ExplanationError):
            compare_distributions(
                toy_dataset, toy_ranking, Pattern({"School": "GP", "Address": "R", "Gender": "M",
                                                   "Failures": 0}), "Gender", k=5
            )
