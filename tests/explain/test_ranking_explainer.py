"""Tests for repro.explain.ranking_explainer (Section V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticSpec, synthetic_dataset
from repro.exceptions import ExplanationError
from repro.explain.ranking_explainer import RankingExplainer
from repro.mlcore.linear import RidgeRegression
from repro.ranking.base import PrecomputedRanker


@pytest.fixture(scope="module")
def score_driven_workload():
    """A dataset whose ranking is driven almost entirely by attribute A1."""
    spec = SyntheticSpec(
        n_rows=220,
        cardinalities=[4, 3, 3, 2],
        score_weights=[5.0, 0.3, 0.0, 0.0],
        noise=0.4,
        seed=11,
    )
    dataset = synthetic_dataset(spec)
    ranking = PrecomputedRanker(score_column="score").rank(dataset)
    return dataset, ranking


@pytest.fixture(scope="module")
def fitted_explainer(score_driven_workload):
    dataset, ranking = score_driven_workload
    explainer = RankingExplainer(n_permutations=24, background_size=24, max_group_rows=40, random_state=1)
    return explainer.fit(dataset, ranking)


class TestFitting:
    def test_model_quality_reported(self, fitted_explainer):
        quality = fitted_explainer.model_quality()
        assert quality["r2"] > 0.7
        assert quality["spearman"] > 0.85

    def test_feature_names_follow_dataset(self, fitted_explainer, score_driven_workload):
        dataset, _ = score_driven_workload
        assert fitted_explainer.feature_names == dataset.attribute_names

    def test_mismatched_ranking_rejected(self, score_driven_workload):
        dataset, _ = score_driven_workload
        other = Dataset.from_columns({"x": ["a", "b"]}, numeric={"s": [1.0, 0.0]})
        other_ranking = PrecomputedRanker(score_column="s").rank(other)
        with pytest.raises(ExplanationError):
            RankingExplainer().fit(dataset, other_ranking)

    def test_unfitted_usage_rejected(self):
        explainer = RankingExplainer()
        with pytest.raises(ExplanationError):
            explainer.model_quality()
        with pytest.raises(ExplanationError):
            explainer.explain_group(Pattern({"A1": "v0"}))


class TestGroupExplanation:
    def test_ranking_attribute_dominates(self, fitted_explainer):
        """The attribute that actually drives the ranking gets the largest |Shapley|
        (the Section VI-C finding: the black box's scoring attribute is recovered)."""
        explanation = fitted_explainer.explain_group(Pattern({"A2": "v0"}))
        top = explanation.top(1)[0]
        assert top.attribute == "A1"
        assert explanation.group_size > 0

    def test_aggregation_matches_mean_of_per_tuple_values(self, fitted_explainer, score_driven_workload):
        dataset, _ = score_driven_workload
        pattern = Pattern({"A4": "v1"})
        rows = np.flatnonzero(dataset.match_mask(pattern))[:10]
        per_tuple = fitted_explainer.shapley_for_rows(rows)
        assert per_tuple.shape == (len(rows), dataset.n_attributes)

    def test_contribution_lookup_and_describe(self, fitted_explainer):
        explanation = fitted_explainer.explain_group(Pattern({"A2": "v1"}))
        contribution = explanation.contribution_of("A1")
        assert contribution.magnitude >= 0
        with pytest.raises(ExplanationError):
            explanation.contribution_of("does_not_exist")
        text = explanation.describe(3)
        assert "A2=v1" in text

    def test_top_attributes_helper(self, fitted_explainer):
        top = fitted_explainer.top_attributes(Pattern({"A2": "v0"}), n=2)
        assert len(top) == 2
        assert top[0] == "A1"

    def test_empty_group_rejected(self, fitted_explainer, score_driven_workload):
        dataset, _ = score_driven_workload
        # Find a fully-specified pattern matching no tuple (72 cells over 220 rows:
        # at least one combination is guaranteed to be empty for this seed).
        from itertools import product

        empty_pattern = None
        for values in product(*[attribute.values for attribute in dataset.schema]):
            candidate = Pattern(dict(zip(dataset.attribute_names, values)))
            if dataset.count(candidate) == 0:
                empty_pattern = candidate
                break
        assert empty_pattern is not None
        with pytest.raises(ExplanationError):
            fitted_explainer.explain_group(empty_pattern)
        with pytest.raises(ExplanationError):
            fitted_explainer.shapley_for_rows([])


class TestCustomModel:
    def test_linear_model_can_be_plugged_in(self, score_driven_workload):
        dataset, ranking = score_driven_workload
        explainer = RankingExplainer(
            model=RidgeRegression(alpha=1.0),
            n_permutations=16,
            background_size=16,
            max_group_rows=20,
        )
        explainer.fit(dataset, ranking)
        explanation = explainer.explain_group(Pattern({"A3": "v0"}))
        assert explanation.top(1)[0].attribute == "A1"
