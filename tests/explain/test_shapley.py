"""Tests for repro.explain.shapley."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExplanationError
from repro.explain.shapley import (
    ShapleyExplainer,
    exact_shapley_values,
    sampled_shapley_values,
)


def linear_predict(weights: np.ndarray, intercept: float = 0.0):
    def predict(features: np.ndarray) -> np.ndarray:
        return np.asarray(features) @ weights + intercept

    return predict


class TestExactShapley:
    def test_linear_model_closed_form(self, rng):
        """For a linear model, the Shapley value of feature i is w_i * (x_i - E[z_i])."""
        weights = np.array([2.0, -1.0, 0.5])
        background = rng.normal(size=(64, 3))
        instance = np.array([1.0, 2.0, -1.0])
        shapley = exact_shapley_values(linear_predict(weights), instance, background)
        expected = weights * (instance - background.mean(axis=0))
        assert shapley == pytest.approx(expected, abs=1e-9)

    def test_efficiency_property(self, rng):
        """Shapley values sum to f(x) - E[f(z)] (local accuracy)."""
        weights = np.array([1.0, 3.0])

        def predict(features):
            features = np.asarray(features)
            return features @ weights + 0.5 * features[:, 0] * features[:, 1]

        background = rng.normal(size=(32, 2))
        instance = np.array([0.7, -1.2])
        shapley = exact_shapley_values(predict, instance, background)
        expected_total = predict(instance.reshape(1, -1))[0] - predict(background).mean()
        assert shapley.sum() == pytest.approx(expected_total, abs=1e-9)

    def test_irrelevant_feature_gets_zero(self, rng):
        weights = np.array([1.5, 0.0])
        background = rng.normal(size=(16, 2))
        shapley = exact_shapley_values(linear_predict(weights), np.array([1.0, 9.0]), background)
        assert shapley[1] == pytest.approx(0.0, abs=1e-9)

    def test_too_many_features_rejected(self):
        background = np.zeros((2, 20))
        with pytest.raises(ExplanationError):
            exact_shapley_values(lambda x: np.zeros(len(x)), np.zeros(20), background)

    def test_input_validation(self):
        with pytest.raises(ExplanationError):
            exact_shapley_values(lambda x: np.zeros(len(x)), np.zeros(3), np.zeros((0, 3)))
        with pytest.raises(ExplanationError):
            exact_shapley_values(lambda x: np.zeros(len(x)), np.zeros(3), np.zeros((4, 2)))


class TestSampledShapley:
    def test_agrees_with_exact_on_linear_model(self, rng):
        weights = np.array([2.0, -1.0, 0.5, 1.0])
        background = rng.normal(size=(20, 4))
        instance = rng.normal(size=4)
        exact = exact_shapley_values(linear_predict(weights), instance, background)
        sampled = sampled_shapley_values(
            linear_predict(weights), instance, background, n_permutations=400,
            rng=np.random.default_rng(0),
        )
        assert sampled == pytest.approx(exact, abs=0.15)

    def test_efficiency_holds_per_permutation_family(self, rng):
        weights = np.array([1.0, 2.0])
        background = rng.normal(size=(10, 2))
        instance = np.array([0.3, -0.8])
        sampled = sampled_shapley_values(
            linear_predict(weights, intercept=3.0), instance, background, n_permutations=200,
            rng=np.random.default_rng(1),
        )
        # For a linear model every permutation chain telescopes exactly.
        expected = weights * (instance - background.mean(axis=0))
        assert sampled.sum() == pytest.approx(expected.sum(), abs=0.2)

    def test_validation(self, rng):
        background = rng.normal(size=(4, 2))
        with pytest.raises(ExplanationError):
            sampled_shapley_values(lambda x: np.zeros(len(x)), np.zeros(2), background, n_permutations=0)


class TestShapleyExplainer:
    def test_uses_exact_for_few_features(self, rng):
        weights = np.array([1.0, -2.0])
        background = rng.normal(size=(16, 2))
        explainer = ShapleyExplainer(linear_predict(weights), background, exact_limit=5)
        instance = np.array([2.0, 1.0])
        assert explainer.explain(instance) == pytest.approx(
            exact_shapley_values(linear_predict(weights), instance, background), abs=1e-9
        )
        assert explainer.n_features == 2

    def test_batch_explanations(self, rng):
        weights = rng.normal(size=3)
        background = rng.normal(size=(8, 3))
        explainer = ShapleyExplainer(linear_predict(weights), background)
        matrix = explainer.explain_batch(rng.normal(size=(5, 3)))
        assert matrix.shape == (5, 3)

    def test_sampling_path_for_many_features(self, rng):
        n_features = 12
        weights = rng.normal(size=n_features)
        background = rng.normal(size=(10, n_features))
        explainer = ShapleyExplainer(
            linear_predict(weights), background, exact_limit=4, n_permutations=50
        )
        values = explainer.explain(rng.normal(size=n_features))
        assert values.shape == (n_features,)

    def test_validation(self):
        with pytest.raises(ExplanationError):
            ShapleyExplainer(lambda x: np.zeros(len(x)), np.zeros((0, 2)))
        with pytest.raises(ExplanationError):
            ShapleyExplainer(lambda x: np.zeros(len(x)), np.zeros((2, 2)), exact_limit=20)
