"""Tests for repro.mlcore.model_selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.mlcore.model_selection import k_fold_indices, train_test_split_indices


class TestTrainTestSplit:
    def test_partition_covers_all_rows(self):
        train, test = train_test_split_indices(100, test_fraction=0.25, seed=1)
        assert len(train) == 75 and len(test) == 25
        assert sorted(np.concatenate([train, test])) == list(range(100))

    def test_deterministic_per_seed(self):
        assert list(train_test_split_indices(50, seed=7)[1]) == list(train_test_split_indices(50, seed=7)[1])
        assert list(train_test_split_indices(50, seed=7)[1]) != list(train_test_split_indices(50, seed=8)[1])

    def test_at_least_one_row_on_each_side(self):
        train, test = train_test_split_indices(2, test_fraction=0.9)
        assert len(train) == 1 and len(test) == 1

    def test_validation(self):
        with pytest.raises(ModelError):
            train_test_split_indices(1)
        with pytest.raises(ModelError):
            train_test_split_indices(10, test_fraction=0.0)
        with pytest.raises(ModelError):
            train_test_split_indices(10, test_fraction=1.0)


class TestKFold:
    def test_folds_partition_the_data(self):
        splits = k_fold_indices(23, n_folds=4, seed=0)
        assert len(splits) == 4
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test) == list(range(23))
        for train, test in splits:
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 23

    def test_validation(self):
        with pytest.raises(ModelError):
            k_fold_indices(10, n_folds=1)
        with pytest.raises(ModelError):
            k_fold_indices(3, n_folds=5)
