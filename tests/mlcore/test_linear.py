"""Tests for repro.mlcore.linear."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.mlcore.linear import RidgeRegression
from repro.mlcore.metrics import r2_score


class TestRidgeRegression:
    def test_recovers_linear_relationship(self, rng):
        features = rng.normal(size=(200, 3))
        targets = 2.0 * features[:, 0] - 1.5 * features[:, 1] + 0.5 + rng.normal(scale=0.01, size=200)
        model = RidgeRegression(alpha=1e-6).fit(features, targets)
        assert model.coefficients_ == pytest.approx([2.0, -1.5, 0.0], abs=0.05)
        assert model.intercept_ == pytest.approx(0.5, abs=0.05)
        assert r2_score(targets, model.predict(features)) > 0.99

    def test_regularisation_shrinks_coefficients(self, rng):
        features = rng.normal(size=(100, 2))
        targets = 3.0 * features[:, 0] + rng.normal(scale=0.1, size=100)
        weak = RidgeRegression(alpha=0.001).fit(features, targets)
        strong = RidgeRegression(alpha=1000.0).fit(features, targets)
        assert abs(strong.coefficients_[0]) < abs(weak.coefficients_[0])

    def test_predict_single_row(self, rng):
        features = rng.normal(size=(50, 2))
        targets = features[:, 0]
        model = RidgeRegression().fit(features, targets)
        single = model.predict(features[0])
        assert single.shape == (1,)

    def test_errors(self, rng):
        model = RidgeRegression()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((2, 2)))
        with pytest.raises(ModelError):
            RidgeRegression(alpha=-1.0)
        with pytest.raises(ModelError):
            model.fit(np.zeros((3,)), np.zeros(3))
        with pytest.raises(ModelError):
            model.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ModelError):
            model.fit(np.zeros((0, 2)), np.zeros(0))
        fitted = RidgeRegression().fit(rng.normal(size=(10, 2)), rng.normal(size=10))
        with pytest.raises(ModelError):
            fitted.predict(np.zeros((2, 5)))

    def test_constant_target(self, rng):
        features = rng.normal(size=(30, 2))
        targets = np.full(30, 7.0)
        model = RidgeRegression().fit(features, targets)
        assert model.predict(features) == pytest.approx(np.full(30, 7.0), abs=1e-6)
