"""Tests for repro.mlcore.encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelError
from repro.mlcore.encoding import DatasetEncoder


@pytest.fixture()
def dataset() -> Dataset:
    return Dataset.from_columns(
        {"color": ["r", "g", "b", "r"], "size": ["S", "L", "S", "L"]},
        numeric={"price": [1.0, 2.0, 3.0, 4.0]},
    )


class TestOrdinalEncoding:
    def test_one_column_per_attribute(self, dataset):
        encoded = DatasetEncoder().encode(dataset)
        assert encoded.feature_names == ("color", "size")
        assert encoded.source_attributes == ("color", "size")
        assert encoded.features.shape == (4, 2)
        assert list(encoded.features[:, 0]) == [0.0, 1.0, 2.0, 0.0]

    def test_numeric_columns_appended(self, dataset):
        encoded = DatasetEncoder(numeric=["price"]).encode(dataset)
        assert encoded.feature_names == ("color", "size", "price")
        assert list(encoded.features[:, 2]) == [1.0, 2.0, 3.0, 4.0]

    def test_explicit_categorical_subset(self, dataset):
        encoded = DatasetEncoder(categorical=["size"]).encode(dataset)
        assert encoded.feature_names == ("size",)
        assert encoded.n_features == 1


class TestOneHotEncoding:
    def test_one_column_per_value(self, dataset):
        encoded = DatasetEncoder(one_hot=True).encode(dataset)
        assert encoded.features.shape == (4, 5)  # 3 colors + 2 sizes
        assert "color=r" in encoded.feature_names
        assert encoded.columns_of_attribute("color") == [0, 1, 2]
        # Each categorical attribute contributes exactly one 1 per row.
        color_block = encoded.features[:, encoded.columns_of_attribute("color")]
        assert np.allclose(color_block.sum(axis=1), 1.0)


class TestValidation:
    def test_unknown_categorical(self, dataset):
        with pytest.raises(ModelError):
            DatasetEncoder(categorical=["missing"]).encode(dataset)

    def test_unknown_numeric(self, dataset):
        with pytest.raises(ModelError):
            DatasetEncoder(numeric=["missing"]).encode(dataset)

    def test_no_features(self, dataset):
        with pytest.raises(ModelError):
            DatasetEncoder(categorical=[]).encode(dataset)
