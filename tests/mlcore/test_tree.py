"""Tests for repro.mlcore.tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.mlcore.metrics import r2_score
from repro.mlcore.tree import DecisionTreeRegressor


class TestDecisionTree:
    def test_fits_a_step_function_exactly(self):
        features = np.arange(20, dtype=float).reshape(-1, 1)
        targets = (features[:, 0] >= 10).astype(float) * 5.0
        model = DecisionTreeRegressor(max_depth=2, min_samples_leaf=1, min_samples_split=2)
        model.fit(features, targets)
        assert list(model.predict(features)) == pytest.approx(list(targets))
        assert model.depth == 1

    def test_depth_limit_respected(self, rng):
        features = rng.normal(size=(200, 3))
        targets = np.sin(features[:, 0] * 3) + features[:, 1] ** 2
        model = DecisionTreeRegressor(max_depth=3).fit(features, targets)
        assert model.depth <= 3

    def test_deeper_trees_fit_better(self, rng):
        features = rng.normal(size=(300, 2))
        targets = features[:, 0] * features[:, 1]
        shallow = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        deep = DecisionTreeRegressor(max_depth=8).fit(features, targets)
        assert r2_score(targets, deep.predict(features)) > r2_score(targets, shallow.predict(features))

    def test_min_samples_leaf(self, rng):
        features = rng.normal(size=(50, 1))
        targets = rng.normal(size=50)
        model = DecisionTreeRegressor(max_depth=10, min_samples_leaf=25).fit(features, targets)
        # With a leaf minimum of half the data at most one split is possible.
        assert model.depth <= 1

    def test_constant_target_yields_single_leaf(self):
        features = np.arange(10, dtype=float).reshape(-1, 1)
        model = DecisionTreeRegressor().fit(features, np.full(10, 3.0))
        assert model.depth == 0
        assert model.predict(features) == pytest.approx(np.full(10, 3.0))

    def test_max_features_subsampling(self, rng):
        features = rng.normal(size=(100, 5))
        targets = features[:, 4] * 2.0
        model = DecisionTreeRegressor(max_depth=4, max_features=2, random_state=0).fit(features, targets)
        predictions = model.predict(features)
        assert predictions.shape == (100,)

    def test_validation_errors(self, rng):
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_leaf=0)
        model = DecisionTreeRegressor()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 1)))
        with pytest.raises(NotFittedError):
            _ = model.depth
        with pytest.raises(ModelError):
            model.fit(np.zeros(3), np.zeros(3))
        fitted = DecisionTreeRegressor().fit(rng.normal(size=(20, 2)), rng.normal(size=20))
        with pytest.raises(ModelError):
            fitted.predict(np.zeros((2, 3)))

    def test_predict_single_row(self, rng):
        features = rng.normal(size=(30, 2))
        model = DecisionTreeRegressor().fit(features, features[:, 0])
        assert model.predict(features[0]).shape == (1,)
