"""Tests for repro.mlcore.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.mlcore.metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    spearman_correlation,
)


class TestErrorMetrics:
    def test_mse_and_mae(self):
        y_true = np.array([1.0, 2.0, 3.0])
        y_pred = np.array([1.0, 3.0, 5.0])
        assert mean_squared_error(y_true, y_pred) == pytest.approx(5 / 3)
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(1.0)

    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_r2_of_mean_prediction_is_zero(self):
        y_true = np.array([1.0, 2.0, 3.0, 4.0])
        y_pred = np.full(4, y_true.mean())
        assert r2_score(y_true, y_pred) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score(np.array([2.0, 2.0]), np.array([1.0, 3.0])) == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            mean_squared_error(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ModelError):
            r2_score(np.array([]), np.array([]))


class TestSpearman:
    def test_perfect_monotone_agreement(self):
        y_true = np.array([1.0, 2.0, 3.0, 4.0])
        y_pred = np.array([10.0, 20.0, 30.0, 40.0])
        assert spearman_correlation(y_true, y_pred) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        y_true = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(y_true, y_true[::-1]) == pytest.approx(-1.0)

    def test_ties_are_averaged(self):
        y_true = np.array([1.0, 1.0, 2.0, 3.0])
        y_pred = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_correlation(y_true, y_pred) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy import stats

        rng = np.random.default_rng(0)
        y_true = rng.normal(size=50)
        y_pred = y_true + rng.normal(scale=0.8, size=50)
        expected = stats.spearmanr(y_true, y_pred).statistic
        assert spearman_correlation(y_true, y_pred) == pytest.approx(expected, abs=1e-9)

    def test_constant_input_gives_zero(self):
        assert spearman_correlation(np.array([1.0, 1.0]), np.array([2.0, 3.0])) == 0.0
