"""Tests for repro.mlcore.boosting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.mlcore.boosting import GradientBoostingRegressor
from repro.mlcore.metrics import r2_score, spearman_correlation


class TestGradientBoosting:
    def test_fits_nonlinear_function(self, rng):
        features = rng.uniform(-2, 2, size=(400, 2))
        targets = np.sin(features[:, 0] * 2.0) + 0.5 * features[:, 1] ** 2
        model = GradientBoostingRegressor(n_estimators=80, learning_rate=0.2, max_depth=3)
        model.fit(features, targets)
        assert r2_score(targets, model.predict(features)) > 0.8

    def test_more_estimators_fit_better(self, rng):
        features = rng.normal(size=(300, 3))
        targets = features[:, 0] * features[:, 1] + features[:, 2]
        small = GradientBoostingRegressor(n_estimators=5).fit(features, targets)
        large = GradientBoostingRegressor(n_estimators=80).fit(features, targets)
        assert r2_score(targets, large.predict(features)) > r2_score(targets, small.predict(features))

    def test_rank_imitation_quality(self, rng):
        """The boosted model can imitate a score-based ranking (the Section V use case)."""
        features = rng.normal(size=(250, 4))
        score = 3.0 * features[:, 0] - 2.0 * features[:, 2]
        ranks = np.empty(250)
        ranks[np.argsort(-score)] = np.arange(1, 251)
        model = GradientBoostingRegressor(n_estimators=60).fit(features, ranks)
        assert spearman_correlation(ranks, model.predict(features)) > 0.9

    def test_subsample_and_determinism(self, rng):
        features = rng.normal(size=(120, 2))
        targets = features[:, 0]
        model_a = GradientBoostingRegressor(n_estimators=15, subsample=0.7, random_state=3)
        model_b = GradientBoostingRegressor(n_estimators=15, subsample=0.7, random_state=3)
        predictions_a = model_a.fit(features, targets).predict(features)
        predictions_b = model_b.fit(features, targets).predict(features)
        assert predictions_a == pytest.approx(predictions_b)
        assert model_a.n_fitted_trees == 15

    def test_validation_errors(self, rng):
        with pytest.raises(ModelError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ModelError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ModelError):
            GradientBoostingRegressor(subsample=1.5)
        model = GradientBoostingRegressor()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 1)))
        with pytest.raises(ModelError):
            model.fit(np.zeros(5), np.zeros(5))
        fitted = GradientBoostingRegressor(n_estimators=2).fit(rng.normal(size=(20, 2)), rng.normal(size=20))
        with pytest.raises(ModelError):
            fitted.predict(np.zeros((3, 4)))
