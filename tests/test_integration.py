"""End-to-end integration tests: the full pipeline the README advertises.

The flow mirrors the paper's intended usage: rank a dataset with a black-box ranker,
detect the most general groups with biased representation, explain a detected group
with Shapley values, and compare its value distribution against the top-k.
"""

from __future__ import annotations

import pytest

from repro import (
    GlobalBoundSpec,
    ProportionalBoundSpec,
    detect_biased_groups,
)
from repro.data.generators.student import student_dataset
from repro.divergence import DivergenceDetector
from repro.explain import RankingExplainer, compare_distributions
from repro.ranking import AttributeRanker


@pytest.fixture(scope="module")
def pipeline_workload():
    dataset = student_dataset(n_rows=180, seed=21)
    # Keep a representative slice of the schema (demographics plus the grade
    # attributes) so the end-to-end runs stay fast while exercising every stage.
    attributes = list(dataset.attribute_names[:9]) + ["G1", "G2", "G3"]
    dataset = dataset.project(attributes)
    ranking = AttributeRanker(score_column="G3", descending=True).rank(dataset)
    return dataset, ranking


class TestEndToEndPipeline:
    def test_detect_explain_and_compare(self, pipeline_workload):
        dataset, ranking = pipeline_workload

        # 1. Detection (proportional representation, Problem 3.2).
        report = detect_biased_groups(
            dataset,
            ranking,
            ProportionalBoundSpec(alpha=0.8),
            tau_s=20,
            k_min=10,
            k_max=30,
        )
        assert report.algorithm == "PropBounds"
        assert report.result.k_values == tuple(range(10, 31))
        assert report.result.total_reported() > 0

        # 2. Pick the largest detected group at the largest k.
        detailed = report.detailed_groups(30, order_by="size")
        assert detailed, "expected at least one group at k=30"
        group = detailed[0]
        assert group.size_in_data >= 20
        assert group.count_in_top_k < group.bound

        # 3. Explain it with the rank-imitation model + Shapley values.
        explainer = RankingExplainer(
            n_permutations=16, background_size=16, max_group_rows=25, random_state=0
        )
        explainer.fit(dataset, ranking)
        explanation = explainer.explain_group(group.pattern)
        top_attribute = explanation.top(1)[0].attribute
        assert top_attribute in dataset.attribute_names
        # The ranker uses the final grade, so a grade attribute should carry the
        # largest aggregated Shapley value.
        assert top_attribute in {"G1", "G2", "G3"}

        # 4. Compare the value distribution of the top attribute (Figure 10d analogue).
        comparison = compare_distributions(dataset, ranking, group.pattern, top_attribute, k=30)
        assert comparison.total_variation_distance() > 0.0

    def test_global_and_proportional_detect_different_but_overlapping_views(self, pipeline_workload):
        dataset, ranking = pipeline_workload
        global_report = detect_biased_groups(
            dataset, ranking, GlobalBoundSpec(lower_bounds=10), tau_s=20, k_min=10, k_max=20
        )
        prop_report = detect_biased_groups(
            dataset, ranking, ProportionalBoundSpec(alpha=0.8), tau_s=20, k_min=10, k_max=20
        )
        assert global_report.algorithm == "GlobalBounds"
        assert prop_report.algorithm == "PropBounds"
        # Global bounds (a fixed quota of 10 per group) flag at least as many groups
        # as the proportional criterion for this workload.
        assert global_report.result.total_reported() >= prop_report.result.total_reported()

    def test_divergence_view_is_a_superset_style_output(self, pipeline_workload):
        dataset, ranking = pipeline_workload
        our_report = detect_biased_groups(
            dataset, ranking, GlobalBoundSpec(lower_bounds=5), tau_s=30, k_min=15, k_max=15
        )
        divergence = DivergenceDetector(support=30 / dataset.n_rows, k=15).detect(dataset, ranking)
        assert len(divergence) >= len(our_report.groups_at(15))
        for pattern in our_report.groups_at(15):
            assert divergence.rank_of(pattern) >= 1
