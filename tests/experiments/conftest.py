"""Fixtures for the experiment-harness tests: heavily scaled-down workloads."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import (
    Workload,
    compas_workload,
    german_credit_workload,
    student_workload,
)


@pytest.fixture(scope="session")
def tiny_student() -> Workload:
    """Student workload scaled to ~100 rows so experiment tests stay fast."""
    return student_workload(scale=0.25)


@pytest.fixture(scope="session")
def tiny_compas() -> Workload:
    return compas_workload(scale=0.03)


@pytest.fixture(scope="session")
def tiny_german() -> Workload:
    return german_credit_workload(scale=0.2)
