"""Tests for the measurement harness and the figure sweeps (Figures 4-9)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.harness import algorithms_for_problem, measure_run
from repro.experiments.reporting import format_series_summary, format_sweep, format_table
from repro.experiments.sweeps import sweep_k_range, sweep_num_attributes, sweep_size_threshold


class TestHarness:
    def test_algorithms_for_problem(self):
        assert algorithms_for_problem("global") == ("IterTD", "GlobalBounds")
        assert algorithms_for_problem("proportional") == ("IterTD", "PropBounds")
        with pytest.raises(ExperimentError):
            algorithms_for_problem("exotic")

    def test_measure_run_records_everything(self, tiny_student):
        dataset = tiny_student.projected(6)
        ranking = tiny_student.ranking().__class__(dataset, tiny_student.ranking().order)
        measurement = measure_run(
            "GlobalBounds",
            dataset,
            ranking,
            tiny_student.default_global_bounds(),
            tau_s=tiny_student.default_tau_s(),
            k_min=10,
            k_max=20,
        )
        assert measurement.algorithm == "GlobalBounds"
        assert measurement.seconds > 0
        assert measurement.nodes_evaluated > 0
        assert measurement.report.result.k_values == tuple(range(10, 21))
        assert len(measurement.as_row()) == 4

    def test_measure_run_unknown_algorithm(self, tiny_student):
        with pytest.raises(ExperimentError):
            measure_run(
                "Oracle",
                tiny_student.dataset(),
                tiny_student.ranking(),
                tiny_student.default_global_bounds(),
                tau_s=5,
                k_min=10,
                k_max=12,
            )


class TestSweeps:
    @pytest.mark.parametrize("problem", ["global", "proportional"])
    def test_num_attributes_sweep(self, tiny_student, problem):
        result = sweep_num_attributes(
            tiny_student, problem, attribute_counts=[3, 5], timeout_seconds=120
        )
        assert result.x_values() == (3.0, 5.0)
        assert set(result.algorithms()) == set(algorithms_for_problem(problem))
        for algorithm in result.algorithms():
            series = result.series(algorithm)
            assert len(series) == 2
            assert all(not point.skipped for point in series)
        # Both algorithms of a problem report identical result sizes at every x.
        baseline, optimized = algorithms_for_problem(problem)
        for base_point, opt_point in zip(result.series(baseline), result.series(optimized)):
            assert base_point.total_reported == opt_point.total_reported

    def test_size_threshold_sweep_monotone_work(self, tiny_student):
        result = sweep_size_threshold(
            tiny_student, "global", thresholds=[20, 80], timeout_seconds=120, n_attributes=6
        )
        for algorithm in result.algorithms():
            series = result.series(algorithm)
            # A larger size threshold prunes more patterns, so less work is done.
            assert series[0].nodes_evaluated >= series[-1].nodes_evaluated

    def test_k_range_sweep(self, tiny_compas):
        result = sweep_k_range(
            tiny_compas, "global", k_max_values=[25, 45], timeout_seconds=120, n_attributes=5
        )
        for algorithm in result.algorithms():
            series = result.series(algorithm)
            assert series[0].x == 25 and series[-1].x == 45
            assert series[0].nodes_evaluated <= series[-1].nodes_evaluated

    def test_timeout_skips_remaining_points(self, tiny_student):
        result = sweep_num_attributes(
            tiny_student, "global", attribute_counts=[3, 4, 5], timeout_seconds=0.0
        )
        for algorithm in result.algorithms():
            series = result.series(algorithm)
            assert series[0].timed_out
            assert all(point.skipped for point in series[1:])

    def test_speedup_and_unknown_problem(self, tiny_student):
        result = sweep_num_attributes(
            tiny_student, "global", attribute_counts=[4], timeout_seconds=120
        )
        speedups = result.speedup()
        assert set(speedups) == {4.0}
        assert speedups[4.0] > 0
        with pytest.raises(ExperimentError):
            sweep_num_attributes(tiny_student, "weird", attribute_counts=[3])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bbb", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.2346" in lines[2]

    def test_format_sweep_and_summary(self, tiny_student):
        result = sweep_num_attributes(
            tiny_student, "global", attribute_counts=[3], timeout_seconds=120
        )
        table = format_sweep(result)
        assert "number of attributes" in table
        assert "IterTD" in table and "GlobalBounds" in table
        summary = format_series_summary(result)
        assert "speedup" in summary
        assert not math.isnan(result.series("IterTD")[0].seconds)
