"""Tests for repro.experiments.workloads."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.workloads import (
    all_workloads,
    compas_workload,
    german_credit_workload,
    student_workload,
    workload_by_name,
)


class TestWorkloadBasics:
    def test_names_and_attribute_counts(self):
        assert student_workload(scale=0.2).name == "student"
        assert compas_workload(scale=0.02).max_attributes == 16
        assert german_credit_workload(scale=0.1).max_attributes == 20
        assert student_workload(scale=0.2).max_attributes == 33

    def test_scale_changes_row_count(self, tiny_student):
        assert tiny_student.n_rows == pytest.approx(0.25 * 395, abs=1)
        assert student_workload().n_rows == 395

    def test_scale_validation(self):
        with pytest.raises(ExperimentError):
            student_workload(scale=0.0)
        with pytest.raises(ExperimentError):
            student_workload(scale=1.5)

    def test_dataset_and_ranking_are_cached(self, tiny_student):
        assert tiny_student.dataset() is tiny_student.dataset()
        assert tiny_student.ranking() is tiny_student.ranking()
        assert len(tiny_student.ranking()) == tiny_student.dataset().n_rows

    def test_projected(self, tiny_student):
        projected = tiny_student.projected(5)
        assert projected.n_attributes == 5
        assert projected.attribute_names == tiny_student.dataset().attribute_names[:5]
        with pytest.raises(ExperimentError):
            tiny_student.projected(0)
        with pytest.raises(ExperimentError):
            tiny_student.projected(99)

    def test_default_parameters_scale_with_rows(self, tiny_student):
        k_min, k_max = tiny_student.default_k_range()
        assert 1 <= k_min <= k_max < tiny_student.n_rows
        assert tiny_student.default_tau_s() >= 5
        assert tiny_student.default_global_bounds().lower(10, 0, 0) == 10
        assert tiny_student.default_proportional_bounds().alpha == pytest.approx(0.8)


class TestLookup:
    def test_workload_by_name(self):
        assert workload_by_name("student", scale=0.2).name == "student"
        assert workload_by_name("compas", scale=0.02).name == "compas"
        assert workload_by_name("german_credit", scale=0.1).name == "german_credit"
        with pytest.raises(ExperimentError):
            workload_by_name("adult")

    def test_all_workloads_order(self):
        names = [workload.name for workload in all_workloads(scale=0.05)]
        assert names == ["compas", "student", "german_credit"]
