"""Tests for the search-gain, result-size survey, Shapley analysis and case study."""

from __future__ import annotations

import pytest

from repro.core.pattern import Pattern
from repro.experiments.case_study import divergence_case_study
from repro.experiments.result_size_survey import result_size_survey
from repro.experiments.search_gain import search_gain
from repro.experiments.shapley_analysis import PAPER_FIGURE10_GROUPS, shapley_analysis
from repro.explain.ranking_explainer import RankingExplainer


class TestSearchGain:
    @pytest.mark.parametrize("problem", ["global", "proportional"])
    def test_gain_is_positive_and_results_match(self, tiny_student, problem):
        gain = search_gain(tiny_student, problem, n_attributes=6)
        assert gain.results_match
        assert gain.optimized_examined < gain.baseline_examined
        assert gain.gain_percent > 0
        assert str(gain.baseline_examined) in gain.describe()

    def test_unknown_problem(self, tiny_student):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            search_gain(tiny_student, "other")


class TestResultSizeSurvey:
    def test_survey_runs_grid_and_summarises(self, tiny_student):
        summary = result_size_survey(
            [tiny_student],
            tau_s_values=(30,),
            lower_bound_values=(5,),
            alpha_values=(0.8,),
            k_max_values=(20,),
            n_attributes=5,
            threshold=100,
        )
        assert summary.n_runs == 2  # one global + one proportional setting
        assert 0.0 <= summary.fraction_below_threshold <= 1.0
        assert "%" in summary.describe()
        problems = {run.problem for run in summary.runs}
        assert problems == {"global", "proportional"}


class TestShapleyAnalysis:
    def test_figure10_pipeline_on_scaled_student(self, tiny_student):
        explainer = RankingExplainer(
            n_permutations=12, background_size=12, max_group_rows=20, random_state=0
        )
        analysis = shapley_analysis(
            tiny_student,
            k=30,
            lower_bound=25.0,
            preferred_group=PAPER_FIGURE10_GROUPS["student"],
            explainer=explainer,
        )
        assert analysis.workload == "student"
        assert analysis.detected_groups
        assert analysis.pattern in analysis.detected_groups
        # The ranking is by final grade, so a grade attribute must dominate the
        # aggregated Shapley values (the Section VI-C claim).
        top_attributes = [c.attribute for c in analysis.explanation.top(3)]
        assert any(name in {"G1", "G2", "G3"} for name in top_attributes)
        assert analysis.model_quality["spearman"] > 0.7
        assert analysis.distribution.k == 30
        assert "workload student" in analysis.describe()

    def test_fails_cleanly_when_nothing_detected(self, tiny_student):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            shapley_analysis(tiny_student, k=30, lower_bound=0.0)


class TestCaseStudy:
    def test_section_vi_d_shape(self, tiny_student):
        result = divergence_case_study(tiny_student, n_attributes=4, k=10)
        # The divergence method returns every frequent subgroup, so its output is
        # at least as large as either of ours, and contains all of our groups.
        assert result.n_divergence_groups >= len(result.global_bounds_groups)
        assert result.n_divergence_groups >= len(result.prop_bounds_groups)
        assert result.divergence_contains_detected()
        text = result.describe()
        assert "GlobalBounds groups" in text and "Divergence method groups" in text

    def test_detected_groups_use_only_first_attributes(self, tiny_student):
        result = divergence_case_study(tiny_student, n_attributes=4, k=10)
        allowed = set(tiny_student.dataset().attribute_names[:4])
        for pattern in result.global_bounds_groups | result.prop_bounds_groups:
            assert set(pattern.attributes).issubset(allowed)
        for group in result.divergence_result:
            assert set(group.pattern.attributes).issubset(allowed)
